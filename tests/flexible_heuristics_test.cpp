// Tests for the §5 flexible-request heuristics: bandwidth policies, the
// online GREEDY (Algorithm 2) and the interval-based WINDOW (Algorithm 3).

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/validate.hpp"
#include "heuristics/bandwidth_policy.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/registry.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

/// Flexible request: volume moves in `fastest` seconds at MaxRate; the
/// window allows `slack` times that.
Request flexible(RequestId id, double ts, double fastest, double max_mbps, double slack,
                 std::size_t in = 0, std::size_t out = 0) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

// -- BandwidthPolicy --------------------------------------------------------

TEST(BandwidthPolicy, MinRatePolicyGrantsExactlyTheFloor) {
  const Request r = flexible(1, 0, 10, 100, 4.0);  // MinRate = 25 MB/s
  const auto bw = BandwidthPolicy::min_rate().assign(r, r.release);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(bw->to_megabytes_per_second(), 25.0, 1e-9);
}

TEST(BandwidthPolicy, MinRateAccountsForDelayedStart) {
  const Request r = flexible(1, 0, 10, 100, 4.0);  // window [0, 40], vol 1 GB
  const auto bw = BandwidthPolicy::min_rate().assign(r, at(20));
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(bw->to_megabytes_per_second(), 50.0, 1e-9);  // 1 GB over 20 s
}

TEST(BandwidthPolicy, FractionOfMaxGrantsF) {
  const Request r = flexible(1, 0, 10, 100, 4.0);
  const auto bw = BandwidthPolicy::fraction_of_max(0.8).assign(r, r.release);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(bw->to_megabytes_per_second(), 80.0, 1e-9);
}

TEST(BandwidthPolicy, FractionRaisedToFeasibleFloor) {
  const Request r = flexible(1, 0, 10, 100, 4.0);
  // At t=35 only 5 s remain: the floor is 200 MB/s > MaxRate -> infeasible.
  EXPECT_FALSE(BandwidthPolicy::fraction_of_max(0.2).assign(r, at(35)).has_value());
  // At t=30, floor is 100 = MaxRate: granted exactly MaxRate despite f=0.2.
  const auto bw = BandwidthPolicy::fraction_of_max(0.2).assign(r, at(30));
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(bw->to_megabytes_per_second(), 100.0, 1e-6);
}

TEST(BandwidthPolicy, NeverExceedsMaxRate) {
  const Request r = flexible(1, 0, 10, 100, 1.0);  // rigid-ish: MinRate == MaxRate
  const auto bw = BandwidthPolicy::fraction_of_max(1.0).assign(r, r.release);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(bw->to_megabytes_per_second(), 100.0, 1e-9);
}

TEST(BandwidthPolicy, RejectsBadFraction) {
  EXPECT_THROW((void)BandwidthPolicy::fraction_of_max(0.0), std::invalid_argument);
  EXPECT_THROW((void)BandwidthPolicy::fraction_of_max(1.5), std::invalid_argument);
}

TEST(BandwidthPolicy, Names) {
  EXPECT_EQ(BandwidthPolicy::min_rate().name(), "minrate");
  EXPECT_EQ(BandwidthPolicy::fraction_of_max(0.8).name(), "f=0.80");
  EXPECT_DOUBLE_EQ(BandwidthPolicy::min_rate().guarantee_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(BandwidthPolicy::fraction_of_max(0.5).guarantee_fraction(), 0.5);
}

// -- GREEDY (Algorithm 2) ---------------------------------------------------

TEST(FlexibleGreedy, AcceptsAtArrivalWithPolicyRate) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 5, 10, 80, 4.0)};
  const auto result =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::fraction_of_max(1.0));
  const auto a = result.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start, at(5));
  EXPECT_NEAR(a->bw.to_megabytes_per_second(), 80.0, 1e-9);
}

TEST(FlexibleGreedy, ReclaimsFinishedTransfers) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 takes the full port for 10 s at f=1; r2 arrives after it finished.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 4.0),
                                flexible(2, 10, 10, 100, 4.0)};
  const auto result =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::fraction_of_max(1.0));
  EXPECT_EQ(result.accepted_count(), 2u);
}

TEST(FlexibleGreedy, BlocksWhileTransferActive) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 4.0),
                                flexible(2, 5, 10, 100, 1.0)};
  const auto result =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::fraction_of_max(1.0));
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
}

TEST(FlexibleGreedy, MinRatePolicyPacksMoreConcurrently) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Four requests, each MinRate 25 MB/s (fastest 10 s, slack 4): all fit at
  // MinRate, only one at full MaxRate.
  std::vector<Request> rs;
  for (RequestId id = 1; id <= 4; ++id) rs.push_back(flexible(id, 0, 10, 100, 4.0));
  const auto min_result = schedule_flexible_greedy(net, rs, BandwidthPolicy::min_rate());
  const auto max_result =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::fraction_of_max(1.0));
  EXPECT_EQ(min_result.accepted_count(), 4u);
  EXPECT_EQ(max_result.accepted_count(), 1u);
}

TEST(FlexibleGreedy, HonorsBothPorts) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 1.0, 0, 1),
                                flexible(2, 1, 10, 100, 1.0, 0, 0),   // ingress busy
                                flexible(3, 1, 10, 100, 1.0, 1, 1)};  // egress busy
  const auto result =
      schedule_flexible_greedy(net, rs, BandwidthPolicy::fraction_of_max(1.0));
  EXPECT_TRUE(result.schedule.is_accepted(1));
  EXPECT_FALSE(result.schedule.is_accepted(2));
  EXPECT_FALSE(result.schedule.is_accepted(3));
}

// -- WINDOW (Algorithm 3) ---------------------------------------------------

TEST(FlexibleWindow, DefersDecisionsToIntervalEnd) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{flexible(1, 2, 10, 100, 8.0)};
  WindowOptions opt;
  opt.step = Duration::seconds(10);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto result = schedule_flexible_window(net, rs, opt);
  const auto a = result.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  // Arrival at 2 -> first interval [2, 12) -> starts at the decision time 12.
  EXPECT_EQ(a->start, at(12));
}

TEST(FlexibleWindow, PicksLowCostRequestsFirst) {
  const Network net = Network::uniform(2, 2, mbps(100));
  // Three candidates in one interval; the pair (in0,out0) is contested:
  // r1 (60) and r2 (60) cannot coexist, r3 uses the other ports.
  // Cost ordering admits r1 or r2 (equal cost, lower id) plus r3.
  const std::vector<Request> rs{flexible(1, 0, 10, 60, 8.0, 0, 0),
                                flexible(2, 1, 10, 60, 8.0, 0, 0),
                                flexible(3, 2, 10, 60, 8.0, 1, 1)};
  WindowOptions opt;
  opt.step = Duration::seconds(5);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto result = schedule_flexible_window(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 2u);
  EXPECT_TRUE(result.schedule.is_accepted(3));
  EXPECT_TRUE(result.schedule.is_accepted(1) != result.schedule.is_accepted(2));
}

TEST(FlexibleWindow, WaitingCanKillTightRequests) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Slack 1: by the decision instant the remaining window is too short.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 1.0)};
  WindowOptions opt;
  opt.step = Duration::seconds(5);
  opt.policy = BandwidthPolicy::min_rate();
  const auto result = schedule_flexible_window(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 0u);
  ASSERT_EQ(result.rejected.size(), 1u);
}

TEST(FlexibleWindow, RaisesRateToMeetDeadlineAfterWait) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Window [0, 40] for a 1 GB transfer (MinRate 25). After waiting to t=20,
  // the floor is 50 MB/s; the MinRate policy must grant 50, not 25.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 4.0)};
  WindowOptions opt;
  opt.step = Duration::seconds(20);
  opt.policy = BandwidthPolicy::min_rate();
  const auto result = schedule_flexible_window(net, rs, opt);
  const auto a = result.schedule.assignment(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->start, at(20));
  EXPECT_NEAR(a->bw.to_megabytes_per_second(), 50.0, 1e-6);
}

TEST(FlexibleWindow, ReclaimsBeforeDeciding) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 occupies [step-decision 5, 15). r2 arrives in [15, 20): decided at 20,
  // after r1's bandwidth was reclaimed at 15.
  const std::vector<Request> rs{flexible(1, 0, 10, 100, 8.0),
                                flexible(2, 16, 10, 100, 8.0)};
  WindowOptions opt;
  opt.step = Duration::seconds(5);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto result = schedule_flexible_window(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 2u);
}

TEST(FlexibleWindow, StopsWhenMinCostExceedsOne) {
  const Network net = Network::uniform(1, 1, mbps(100));
  std::vector<Request> rs;
  for (RequestId id = 1; id <= 5; ++id) {
    rs.push_back(flexible(id, 0.5 * static_cast<double>(id), 10, 60, 8.0));
  }
  WindowOptions opt;
  opt.step = Duration::seconds(5);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto result = schedule_flexible_window(net, rs, opt);
  EXPECT_EQ(result.accepted_count(), 1u);  // 60 + 60 > 100
  EXPECT_EQ(result.rejected.size(), 4u);
}

TEST(FlexibleWindow, RejectsNonPositiveStep) {
  const Network net = Network::uniform(1, 1, mbps(100));
  WindowOptions opt;
  opt.step = Duration::zero();
  EXPECT_THROW((void)schedule_flexible_window(net, std::vector<Request>{}, opt),
               std::invalid_argument);
}

TEST(FlexibleWindow, RejectsNonFiniteOptions) {
  // Regression: NaN satisfies neither `x < 1.0` nor `x <= 0` style gates,
  // so non-finite options used to pass validation silently.
  const Network net = Network::uniform(1, 1, mbps(100));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  WindowOptions nan_step;
  nan_step.step = Duration::seconds(nan);
  EXPECT_THROW((void)schedule_flexible_window(net, std::vector<Request>{}, nan_step),
               std::invalid_argument);
  WindowOptions inf_step;
  inf_step.step = Duration::seconds(std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)schedule_flexible_window(net, std::vector<Request>{}, inf_step),
               std::invalid_argument);
  WindowOptions nan_hotspot;
  nan_hotspot.hotspot_weight = nan;
  EXPECT_THROW((void)schedule_flexible_window(net, std::vector<Request>{}, nan_hotspot),
               std::invalid_argument);
}

TEST(FlexibleWindow, EmptyRequestSet) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const auto result = schedule_flexible_window(net, std::vector<Request>{}, {});
  EXPECT_EQ(result.accepted_count(), 0u);
}

TEST(FlexibleWindow, HotspotAwareSpreadsLoad) {
  // Ingress 0 already carries a long-running 40 MB/s transfer. Two
  // candidates tie at the paper's fit cost (0.9) but conflict on egress 1
  // (50 + 90 > 100), so exactly one is admitted:
  //   r2: in0 -> out1 at 50  (rides the hot ingress)
  //   r3: in1 -> out1 at 90  (idle ingress)
  // Pure paper cost breaks the tie by id (r2); the hot-spot penalty must
  // flip the choice to r3.
  const Network net = Network::uniform(2, 2, mbps(100));
  const std::vector<Request> rs{flexible(1, 0, 100, 40, 8.0, 0, 0),
                                flexible(2, 6, 10, 50, 8.0, 0, 1),
                                flexible(3, 7, 10, 90, 8.0, 1, 1)};
  WindowOptions plain;
  plain.step = Duration::seconds(5);
  plain.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto baseline = schedule_flexible_window(net, rs, plain);
  EXPECT_TRUE(baseline.schedule.is_accepted(2));
  EXPECT_FALSE(baseline.schedule.is_accepted(3));

  WindowOptions hot = plain;
  hot.hotspot_weight = 1.0;
  const auto result = schedule_flexible_window(net, rs, hot);
  EXPECT_TRUE(result.schedule.is_accepted(3));
  EXPECT_FALSE(result.schedule.is_accepted(2));
}

// ---------------------------------------------------------------------------
// Property sweeps.
// ---------------------------------------------------------------------------

struct FlexCase {
  double f;  // 0 = MinRate policy
  double step_s;
  double interarrival_s;
  std::uint64_t seed;
};

class FlexibleValidity : public ::testing::TestWithParam<FlexCase> {};

TEST_P(FlexibleValidity, SchedulesAreFeasibleAndGuaranteeF) {
  const FlexCase c = GetParam();
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(c.interarrival_s),
                               Duration::seconds(400), 4.0);
  Rng rng{c.seed};
  const auto requests = workload::generate(scenario.spec, rng);
  ASSERT_GT(requests.size(), 5u);

  const BandwidthPolicy policy = c.f == 0.0 ? BandwidthPolicy::min_rate()
                                            : BandwidthPolicy::fraction_of_max(c.f);
  for (const bool use_window : {false, true}) {
    ScheduleResult result;
    if (use_window) {
      WindowOptions opt;
      opt.step = Duration::seconds(c.step_s);
      opt.policy = policy;
      result = schedule_flexible_window(scenario.network, requests, opt);
    } else {
      result = schedule_flexible_greedy(scenario.network, requests, policy);
    }
    EXPECT_EQ(result.accepted_count() + result.rejected.size(), requests.size());
    const auto report = validate_schedule(scenario.network, requests, result.schedule,
                                          c.f);
    EXPECT_TRUE(report.ok()) << (use_window ? "window" : "greedy") << " f=" << c.f
                             << ":\n" << report.to_string();
    // Every accepted request meets the §2.3 guarantee by construction.
    EXPECT_EQ(metrics::guaranteed_count(requests, result.schedule, c.f),
              result.accepted_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAndLoadSweep, FlexibleValidity,
    ::testing::Values(FlexCase{0.0, 50, 2.0, 31}, FlexCase{0.5, 50, 2.0, 32},
                      FlexCase{1.0, 50, 2.0, 33}, FlexCase{0.8, 100, 0.5, 34},
                      FlexCase{0.0, 200, 8.0, 35}, FlexCase{1.0, 400, 1.0, 36}));

TEST(Registry, FlexibleNaming) {
  EXPECT_EQ(make_greedy(BandwidthPolicy::min_rate()).name, "greedy/minrate");
  WindowOptions opt;
  opt.step = Duration::seconds(400);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  EXPECT_EQ(make_window(opt).name, "window400/f=1.00");
}

}  // namespace
}  // namespace gridbw::heuristics
