// Tests for the Dinic max-flow substrate.

#include <gtest/gtest.h>

#include "flow/maxflow.hpp"
#include "util/random.hpp"

namespace gridbw::flow {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlowGraph g{2};
  const auto e = g.add_edge(0, 1, 7);
  EXPECT_EQ(g.max_flow(0, 1), 7);
  EXPECT_EQ(g.flow_on(e), 7);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlowGraph g{3};
  (void)g.add_edge(0, 1, 10);
  (void)g.add_edge(1, 2, 3);
  EXPECT_EQ(g.max_flow(0, 2), 3);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlowGraph g{4};
  (void)g.add_edge(0, 1, 4);
  (void)g.add_edge(1, 3, 4);
  (void)g.add_edge(0, 2, 5);
  (void)g.add_edge(2, 3, 5);
  EXPECT_EQ(g.max_flow(0, 3), 9);
}

TEST(MaxFlow, ClassicCLRSExample) {
  // CLRS figure 26.1: max flow 23.
  MaxFlowGraph g{6};
  (void)g.add_edge(0, 1, 16);
  (void)g.add_edge(0, 2, 13);
  (void)g.add_edge(1, 2, 10);
  (void)g.add_edge(2, 1, 4);
  (void)g.add_edge(1, 3, 12);
  (void)g.add_edge(3, 2, 9);
  (void)g.add_edge(2, 4, 14);
  (void)g.add_edge(4, 3, 7);
  (void)g.add_edge(3, 5, 20);
  (void)g.add_edge(4, 5, 4);
  EXPECT_EQ(g.max_flow(0, 5), 23);
}

TEST(MaxFlow, RequiresAugmentingPathExchange) {
  // The case plain greedy path-picking gets wrong without residual edges.
  MaxFlowGraph g{4};
  (void)g.add_edge(0, 1, 1);
  (void)g.add_edge(0, 2, 1);
  (void)g.add_edge(1, 2, 1);
  (void)g.add_edge(1, 3, 1);
  (void)g.add_edge(2, 3, 1);
  EXPECT_EQ(g.max_flow(0, 3), 2);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlowGraph g{3};
  (void)g.add_edge(0, 1, 5);
  EXPECT_EQ(g.max_flow(0, 2), 0);
}

TEST(MaxFlow, ZeroCapacityEdge) {
  MaxFlowGraph g{2};
  (void)g.add_edge(0, 1, 0);
  EXPECT_EQ(g.max_flow(0, 1), 0);
}

TEST(MaxFlow, FlowConservationOnRandomGraphs) {
  Rng rng{55};
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t nodes = 8;
    MaxFlowGraph g{nodes};
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> edges;  // (from,to,id)
    for (int e = 0; e < 20; ++e) {
      const auto from = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
      const auto to = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
      if (from == to) continue;
      edges.emplace_back(from, to, g.add_edge(from, to, rng.uniform_int(0, 9)));
    }
    const std::int64_t total = g.max_flow(0, nodes - 1);
    // Conservation: net flow out of every interior node is zero; source
    // emits `total`, sink absorbs it.
    std::vector<std::int64_t> net(nodes, 0);
    for (const auto& [from, to, id] : edges) {
      const std::int64_t f = g.flow_on(id);
      EXPECT_GE(f, 0);
      net[from] += f;
      net[to] -= f;
    }
    EXPECT_EQ(net[0], total);
    EXPECT_EQ(net[nodes - 1], -total);
    for (std::size_t v = 1; v + 1 < nodes; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
  }
}

TEST(MaxFlow, Validation) {
  EXPECT_THROW(MaxFlowGraph{1}, std::invalid_argument);
  MaxFlowGraph g{3};
  EXPECT_THROW((void)g.add_edge(0, 5, 1), std::out_of_range);
  EXPECT_THROW((void)g.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW((void)g.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW((void)g.max_flow(0, 9), std::out_of_range);
  EXPECT_THROW((void)g.flow_on(99), std::out_of_range);
}

}  // namespace
}  // namespace gridbw::flow
