// Tests for the paper's objective metrics.

#include <gtest/gtest.h>

#include <vector>

#include "metrics/objectives.hpp"

namespace gridbw::metrics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request make(RequestId id, double ts, double tf, double gb, double max_mbps,
             std::size_t in = 0, std::size_t out = 0) {
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(tf))
      .volume(Volume::gigabytes(gb))
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(AcceptRate, CountsAcceptedOverTotal) {
  const std::vector<Request> rs{make(1, 0, 100, 1, 100), make(2, 0, 100, 1, 100),
                                make(3, 0, 100, 1, 100), make(4, 0, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(10));
  s.accept(3, at(0), mbps(10));
  EXPECT_DOUBLE_EQ(accept_rate(rs, s), 0.5);
  EXPECT_DOUBLE_EQ(accept_rate(std::vector<Request>{}, s), 0.0);
}

TEST(ResourceUtilPaper, FullDemandOnEveryPort) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{make(1, 0, 10, 1, 100)};  // MinRate 100
  Schedule s;
  s.accept(1, at(0), mbps(100));
  // granted = 100; scaled = (min(100,100) + min(100,100))/2 = 100.
  EXPECT_DOUBLE_EQ(resource_util_paper(net, rs, s), 1.0);
}

TEST(ResourceUtilPaper, IdlePortsExcludedByScaling) {
  const Network net = Network::uniform(2, 2, mbps(100));
  // All demand on the (0, 0) pair; ports 1 have no requests and must not
  // dilute the ratio.
  const std::vector<Request> rs{make(1, 0, 10, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(100));
  EXPECT_DOUBLE_EQ(resource_util_paper(net, rs, s), 1.0);
}

TEST(ResourceUtilPaper, PartialAcceptance) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{make(1, 0, 10, 0.5, 100), make(2, 0, 10, 0.5, 100)};
  // Each MinRate = 50; demand = 100 per port (not above capacity).
  Schedule s;
  s.accept(1, at(0), mbps(50));
  EXPECT_DOUBLE_EQ(resource_util_paper(net, rs, s), 0.5);
}

TEST(ResourceUtilPaper, DemandAboveCapacityScalesToCapacity) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{make(1, 0, 10, 1, 200), make(2, 0, 10, 1, 200)};
  // Demand 200 per port, scaled to 100. Accepting one at its MinRate 100
  // saturates the ratio.
  Schedule s;
  s.accept(1, at(0), mbps(100));
  EXPECT_DOUBLE_EQ(resource_util_paper(net, rs, s), 1.0);
}

TEST(ResourceUtilPaper, NoRequestsGivesZero) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_DOUBLE_EQ(resource_util_paper(net, std::vector<Request>{}, Schedule{}), 0.0);
}

TEST(UtilizationTimeAveraged, GrantedBytesOverHorizonCapacity) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // Horizon [0, 100]; granted 1 GB -> 10 MB/s average over 100 MB/s.
  const std::vector<Request> rs{make(1, 0, 100, 1, 100), make(2, 0, 100, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(10));
  EXPECT_NEAR(utilization_time_averaged(net, rs, s), 0.1, 1e-12);
}

TEST(UtilizationTimeAveraged, EmptySetIsZero) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_DOUBLE_EQ(utilization_time_averaged(net, std::vector<Request>{}, Schedule{}),
                   0.0);
}

TEST(GuaranteedCount, ChecksFloorPerRequest) {
  const std::vector<Request> rs{make(1, 0, 1000, 1, 100), make(2, 0, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(85));
  s.accept(2, at(0), mbps(50));
  EXPECT_EQ(guaranteed_count(rs, s, 0.8), 1u);  // only r1 meets 80 MB/s
  EXPECT_EQ(guaranteed_count(rs, s, 0.5), 2u);
  EXPECT_EQ(guaranteed_count(rs, s, 0.0), 2u);  // floor is MinRate (1 MB/s)
}

TEST(GuaranteedCount, MinRateFloorAppliesWhenAboveF) {
  // MinRate = 100 MB/s (tight window); f*Max = 10. The floor is MinRate.
  const std::vector<Request> rs{make(1, 0, 10, 1, 200)};
  Schedule s;
  s.accept(1, at(0), mbps(50));  // below MinRate -> not guaranteed (and infeasible)
  EXPECT_EQ(guaranteed_count(rs, s, 0.05), 0u);
}

TEST(StretchStats, OneMeansFullHostRate) {
  const std::vector<Request> rs{make(1, 0, 1000, 1, 100), make(2, 0, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(0), mbps(100));  // stretch 1
  s.accept(2, at(0), mbps(25));   // stretch 4
  const auto stats = stretch_stats(rs, s);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(StartDelayStats, MeasuresWaitingTime) {
  const std::vector<Request> rs{make(1, 10, 1000, 1, 100), make(2, 20, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(10), mbps(100));  // no wait
  s.accept(2, at(50), mbps(100));  // waited 30 s
  const auto stats = start_delay_stats(rs, s);
  EXPECT_DOUBLE_EQ(stats.mean(), 15.0);
  EXPECT_DOUBLE_EQ(stats.max(), 30.0);
}

TEST(StartDelayStats, RejectedRequestsExcluded) {
  const std::vector<Request> rs{make(1, 0, 1000, 1, 100), make(2, 0, 1000, 1, 100)};
  Schedule s;
  s.accept(1, at(5), mbps(100));
  EXPECT_EQ(start_delay_stats(rs, s).count(), 1u);
}

}  // namespace
}  // namespace gridbw::metrics
