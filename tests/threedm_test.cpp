// Tests for the 3-DM reduction: both certificate directions and the
// equivalence "matching exists <=> K requests schedulable", validated with
// the exact flexible solver on random instances.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "exact/bnb.hpp"
#include "exact/threedm.hpp"
#include "util/random.hpp"

namespace gridbw::exact {
namespace {

ThreeDMInstance perfect_instance_n3() {
  // Diagonal matching exists: (0,0,0), (1,1,1), (2,2,2) + noise triples.
  return ThreeDMInstance{3,
                         {{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {0, 1, 2}, {2, 1, 0}}};
}

ThreeDMInstance unmatchable_instance_n2() {
  // Every triple uses y = 0: no two disjoint triples exist.
  return ThreeDMInstance{2, {{0, 0, 0}, {1, 0, 1}, {0, 0, 1}}};
}

TEST(ThreeDM, ValidityCheck) {
  EXPECT_TRUE(perfect_instance_n3().is_valid());
  const ThreeDMInstance bad{2, {{0, 0, 5}}};
  EXPECT_FALSE(bad.is_valid());
}

TEST(ThreeDM, BruteForceFindsDiagonalMatching) {
  const auto m = solve_3dm_bruteforce(perfect_instance_n3());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 3u);
}

TEST(ThreeDM, BruteForceDetectsUnmatchable) {
  EXPECT_FALSE(solve_3dm_bruteforce(unmatchable_instance_n2()).has_value());
}

TEST(ThreeDM, BruteForceRejectsInvalidInstance) {
  const ThreeDMInstance bad{2, {{0, 0, 9}}};
  EXPECT_THROW((void)solve_3dm_bruteforce(bad), std::invalid_argument);
}

TEST(Reduction, SizesMatchTheorem1) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  const std::size_t n = inst.n;
  EXPECT_EQ(red.network.ingress_count(), n + 1);
  EXPECT_EQ(red.network.egress_count(), n + 1);
  EXPECT_EQ(red.requests.size(), inst.triples.size() + 2 * n * (n - 1));
  EXPECT_EQ(red.k_bound, n + 2 * n * (n - 1));
  EXPECT_EQ(red.regular_count, inst.triples.size());
  // Special ports have capacity n-1 units, regular ports 1 unit.
  const Bandwidth unit = Bandwidth::megabytes_per_second(1);
  EXPECT_EQ(red.network.ingress_capacity(IngressId{0}), unit);
  EXPECT_EQ(red.network.ingress_capacity(IngressId{n}),
            unit * static_cast<double>(n - 1));
  EXPECT_EQ(red.network.egress_capacity(EgressId{n}),
            unit * static_cast<double>(n - 1));
}

TEST(Reduction, RegularRequestsAreRigidAtTheirStep) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  for (std::size_t t = 0; t < red.regular_count; ++t) {
    const Request& r = red.requests[red.regular_offset + t];
    EXPECT_TRUE(r.is_rigid()) << r.describe();
    EXPECT_DOUBLE_EQ(r.release.to_seconds(),
                     static_cast<double>(inst.triples[t].z + 1));
    EXPECT_DOUBLE_EQ(r.window().to_seconds(), 1.0);
    EXPECT_EQ(r.ingress.value, inst.triples[t].x);
    EXPECT_EQ(r.egress.value, inst.triples[t].y);
  }
}

TEST(Reduction, SpecialRequestsAreFlexibleOverAllSteps) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  for (std::size_t k = 0; k < red.regular_offset; ++k) {
    const Request& r = red.requests[k];
    EXPECT_FALSE(r.is_rigid()) << r.describe();
    EXPECT_DOUBLE_EQ(r.release.to_seconds(), 1.0);
    EXPECT_DOUBLE_EQ(r.deadline.to_seconds(), static_cast<double>(inst.n + 1));
    // Exactly one endpoint is the special port.
    EXPECT_TRUE((r.ingress.value == inst.n) != (r.egress.value == inst.n));
  }
}

TEST(Reduction, RequiresNAtLeastTwo) {
  const ThreeDMInstance tiny{1, {{0, 0, 0}}};
  EXPECT_THROW((void)reduce_3dm(tiny), std::invalid_argument);
}

TEST(Certificates, MatchingYieldsFeasibleScheduleAcceptingK) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  const auto matching = solve_3dm_bruteforce(inst);
  ASSERT_TRUE(matching.has_value());
  const Schedule s = schedule_from_matching(red, inst, *matching);
  EXPECT_EQ(s.accepted_count(), red.k_bound);
  const auto report = validate_schedule(red.network, red.requests, s);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Certificates, ScheduleMapsBackToMatching) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  const auto matching = solve_3dm_bruteforce(inst);
  ASSERT_TRUE(matching.has_value());
  const Schedule s = schedule_from_matching(red, inst, *matching);
  const auto recovered = matching_from_schedule(red, inst, s);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, *matching);
}

TEST(Certificates, TooSmallScheduleYieldsNoMatching) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  const Schedule empty;
  EXPECT_FALSE(matching_from_schedule(red, inst, empty).has_value());
}

TEST(Certificates, WrongMatchingSizeThrows) {
  const auto inst = perfect_instance_n3();
  const auto red = reduce_3dm(inst);
  EXPECT_THROW((void)schedule_from_matching(red, inst, std::vector<std::size_t>{0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The equivalence of Theorem 1 on random instances: the exact solver reaches
// K on the reduced platform iff the 3-DM instance has a perfect matching.
// ---------------------------------------------------------------------------

class Theorem1Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Equivalence, ExactSolverAgreesWithBruteForce3DM) {
  Rng rng{GetParam()};
  // n = 2 keeps the reduced platform small enough for a provably-optimal
  // search (the special requests are pairwise symmetric, which the B&B does
  // not exploit).
  const std::size_t n = 2;
  ThreeDMInstance inst{n, {}};
  const auto triple_count = static_cast<std::size_t>(rng.uniform_int(2, 4));
  for (std::size_t t = 0; t < triple_count; ++t) {
    inst.triples.push_back(Triple{static_cast<std::size_t>(rng.uniform_int(0, 1)),
                                  static_cast<std::size_t>(rng.uniform_int(0, 1)),
                                  static_cast<std::size_t>(rng.uniform_int(0, 1))});
  }
  const bool has_matching = solve_3dm_bruteforce(inst).has_value();

  const auto red = reduce_3dm(inst);
  const auto solved =
      solve_flexible_optimal(red.network, red.requests, Duration::seconds(1),
                             ExactOptions{20'000'000});
  ASSERT_TRUE(solved.proven_optimal);
  EXPECT_EQ(solved.result.accepted_count() >= red.k_bound, has_matching);
  if (has_matching) {
    const auto recovered = matching_from_schedule(red, inst, solved.result.schedule);
    ASSERT_TRUE(recovered.has_value());
    // The recovered triples must form a genuine matching of the instance.
    std::vector<char> used_x(inst.n, 0), used_y(inst.n, 0), used_z(inst.n, 0);
    for (std::size_t idx : *recovered) {
      const Triple& tr = inst.triples.at(idx);
      EXPECT_FALSE(used_x[tr.x] || used_y[tr.y] || used_z[tr.z]);
      used_x[tr.x] = used_y[tr.y] = used_z[tr.z] = 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Theorem1Equivalence,
                         ::testing::Values(201, 202, 203, 204, 205));

}  // namespace
}  // namespace gridbw::exact
