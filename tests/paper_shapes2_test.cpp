// Second batch of integration shape tests, covering the repository's
// extension experiments at reduced scale (seeded; generous margins).

#include <gtest/gtest.h>

#include <vector>

#include "dataplane/replay.hpp"
#include "heuristics/compact.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "longlived/longlived.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/mixture.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;

TEST(PaperShapes2, SeparatedLanesProtectMice) {
  const auto spec = workload::mice_and_elephants(Duration::seconds(0.3),
                                                 Duration::seconds(400), 0.8);
  const Network full = Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  const Network lane = Network::uniform(10, 10, Bandwidth::megabytes_per_second(150));

  RunningStats mixed_rate, lane_rate;
  for (const std::uint64_t seed : {41u, 42u, 43u}) {
    Rng rng{seed};
    const auto trace = workload::generate_mixture(spec, rng);
    const auto mice = trace.of_class(0);
    const auto mixed = heuristics::schedule_flexible_greedy(
        full, trace.requests, BandwidthPolicy::fraction_of_max(1.0));
    mixed_rate.add(metrics::accept_rate(mice, mixed.schedule));
    lane_rate.add(heuristics::schedule_flexible_greedy(
                      lane, mice, BandwidthPolicy::fraction_of_max(1.0))
                      .accept_rate());
  }
  EXPECT_GT(lane_rate.mean(), mixed_rate.mean());
}

TEST(PaperShapes2, CompactionReducesWaitingWithoutLosingAccepts) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(400), 4.0);
  Rng rng{44};
  const auto requests = workload::generate(scenario.spec, rng);
  heuristics::WindowOptions opt;
  opt.step = Duration::seconds(100);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto scheduled =
      heuristics::schedule_flexible_window(scenario.network, requests, opt);
  const auto compacted = heuristics::compact_schedule(
      scenario.network, requests, scheduled.schedule, {Duration::seconds(5)});
  EXPECT_EQ(compacted.schedule.accepted_count(), scheduled.schedule.accepted_count());
  EXPECT_LT(metrics::start_delay_stats(requests, compacted.schedule).mean(),
            metrics::start_delay_stats(requests, scheduled.schedule).mean());
}

TEST(PaperShapes2, LongLivedOptimumShinesOnSkewedDemand) {
  // Hot-pair contention: many streams fight for two egress ports.
  const Network net = Network::uniform(4, 4, Bandwidth::megabytes_per_second(100));
  const Bandwidth rate = Bandwidth::megabytes_per_second(100);
  RunningStats gain;
  for (const std::uint64_t seed : {45u, 46u, 47u, 48u}) {
    Rng rng{seed};
    std::vector<longlived::LongLivedRequest> demands;
    for (RequestId id = 1; id <= 10; ++id) {
      demands.push_back(longlived::LongLivedRequest{
          id, IngressId{static_cast<std::size_t>(rng.uniform_int(0, 3))},
          EgressId{static_cast<std::size_t>(rng.uniform_int(0, 1))}, rate});
    }
    const auto greedy = longlived::schedule_greedy(net, demands);
    const auto optimal = longlived::schedule_uniform_optimal(net, demands, rate);
    gain.add(static_cast<double>(optimal.accepted_count()) -
             static_cast<double>(greedy.accepted_count()));
  }
  EXPECT_GE(gain.mean(), 0.0);
  EXPECT_GE(gain.max(), 0.0);
}

TEST(PaperShapes2, HotspotPenaltyImprovesJainFairnessOnSkew) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(500), 4.0);
  RunningStats plain_jain, hot_jain;
  for (const std::uint64_t seed : {49u, 50u, 51u, 52u}) {
    Rng rng{seed};
    auto requests = workload::generate(scenario.spec, rng);
    for (Request& r : requests) {
      if (rng.bernoulli(0.5)) {
        r.ingress = IngressId{static_cast<std::size_t>(rng.uniform_int(0, 1))};
        r.egress = EgressId{static_cast<std::size_t>(rng.uniform_int(0, 1))};
      }
    }
    auto measure = [&](double weight) {
      heuristics::WindowOptions opt;
      opt.step = Duration::seconds(100);
      opt.policy = BandwidthPolicy::fraction_of_max(1.0);
      opt.hotspot_weight = weight;
      const auto result =
          heuristics::schedule_flexible_window(scenario.network, requests, opt);
      const auto granted =
          metrics::granted_per_egress(scenario.network, requests, result.schedule);
      std::vector<double> bytes;
      for (Volume v : granted) bytes.push_back(v.to_bytes());
      return metrics::jain_fairness(bytes);
    };
    plain_jain.add(measure(0.0));
    hot_jain.add(measure(1.0));
  }
  // The penalty must not *hurt* fairness; typically it helps a little.
  EXPECT_GE(hot_jain.mean(), plain_jain.mean() - 0.05);
}

TEST(PaperShapes2, PolicedReplayKeepsPromisesWhereUnpolicedBreaksThem) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(300), 4.0);
  Rng rng{53};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto schedule = heuristics::schedule_flexible_greedy(
      scenario.network, requests, BandwidthPolicy::fraction_of_max(1.0));

  dataplane::ReplayOptions opt;
  opt.misbehave_factor = 4.0;
  std::size_t k = 0;
  for (const Assignment& a : schedule.schedule.assignments()) {
    if (++k % 2 == 0) opt.misbehaving.push_back(a.request);
  }
  ASSERT_FALSE(opt.misbehaving.empty());

  const auto policed =
      dataplane::replay_policed(scenario.network, requests, schedule.schedule, opt);
  const auto wild =
      dataplane::replay_unpoliced(scenario.network, requests, schedule.schedule, opt);
  EXPECT_EQ(policed.late_count(), 0u);
  EXPECT_GT(wild.late_count(), 0u);
}

TEST(PaperShapes2, JainFairnessMetricBasics) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness(std::vector<double>{1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(metrics::jain_fairness(std::vector<double>{1, 0, 0, 0}), 0.25, 1e-12);
  // Empty input is vacuous, not perfectly fair.
  EXPECT_DOUBLE_EQ(metrics::jain_fairness(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness(std::vector<double>{0, 0}), 1.0);
}

TEST(PaperShapes2, GrantedPerPortSumsToAcceptedVolume) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(300), 4.0);
  Rng rng{54};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto result = heuristics::schedule_flexible_greedy(
      scenario.network, requests, BandwidthPolicy::min_rate());
  Volume accepted = Volume::zero();
  for (const Request& r : requests) {
    if (result.schedule.is_accepted(r.id)) accepted += r.volume;
  }
  Volume in_total = Volume::zero(), out_total = Volume::zero();
  for (Volume v :
       metrics::granted_per_ingress(scenario.network, requests, result.schedule)) {
    in_total += v;
  }
  for (Volume v :
       metrics::granted_per_egress(scenario.network, requests, result.schedule)) {
    out_total += v;
  }
  EXPECT_NEAR(in_total.to_bytes(), accepted.to_bytes(), 1.0);
  EXPECT_NEAR(out_total.to_bytes(), accepted.to_bytes(), 1.0);
}

}  // namespace
}  // namespace gridbw
