// Tests for the distributed-admission extension (paper §7 future work).

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/distributed.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request flexible(RequestId id, double ts, double fastest, double max_mbps, double slack,
                 std::size_t in, std::size_t out) {
  const Volume vol = mbps(max_mbps) * Duration::seconds(fastest);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts + fastest * slack))
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(Distributed, FreshViewsMatchCentralizedGreedy) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(300), 4.0);
  Rng rng{77};
  const auto requests = workload::generate(scenario.spec, rng);

  DistributedOptions opt;
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.sync_period = Duration::zero();
  const auto distributed = schedule_flexible_distributed(scenario.network, requests, opt);
  const auto centralized = schedule_flexible_greedy(scenario.network, requests,
                                                    opt.policy);

  EXPECT_EQ(distributed.egress_conflicts, 0u);
  EXPECT_EQ(distributed.result.accepted_count(), centralized.accepted_count());
  for (const Request& r : requests) {
    EXPECT_EQ(distributed.result.schedule.is_accepted(r.id),
              centralized.schedule.is_accepted(r.id));
  }
}

TEST(Distributed, StaleViewCausesEgressConflict) {
  const Network net = Network::uniform(2, 1, mbps(100));
  // Two requests from different ingress routers racing for the same egress
  // within one sync period: the second is optimistically admitted on the
  // stale view and NACKed by enforcement.
  const std::vector<Request> rs{flexible(1, 0.0, 10, 80, 4.0, 0, 0),
                                flexible(2, 0.5, 10, 80, 4.0, 1, 0)};
  DistributedOptions opt;
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.sync_period = Duration::seconds(100);
  const auto out = schedule_flexible_distributed(net, rs, opt);
  EXPECT_TRUE(out.result.schedule.is_accepted(1));
  EXPECT_FALSE(out.result.schedule.is_accepted(2));
  EXPECT_EQ(out.egress_conflicts, 1u);
}

TEST(Distributed, OwnIngressAlwaysExact) {
  const Network net = Network::uniform(1, 2, mbps(100));
  // Same ingress router for both: no staleness on the ingress side, so the
  // second is rejected cleanly (no conflict) even with an infinite sync.
  const std::vector<Request> rs{flexible(1, 0.0, 10, 80, 4.0, 0, 0),
                                flexible(2, 0.5, 10, 80, 4.0, 0, 1)};
  DistributedOptions opt;
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  opt.sync_period = Duration::seconds(1e9);
  const auto out = schedule_flexible_distributed(net, rs, opt);
  EXPECT_TRUE(out.result.schedule.is_accepted(1));
  EXPECT_FALSE(out.result.schedule.is_accepted(2));
  EXPECT_EQ(out.egress_conflicts, 0u);
}

TEST(Distributed, SchedulesRemainFeasibleDespiteStaleness) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(300), 4.0);
  Rng rng{78};
  const auto requests = workload::generate(scenario.spec, rng);
  DistributedOptions opt;
  opt.policy = BandwidthPolicy::fraction_of_max(0.8);
  opt.sync_period = Duration::seconds(30);
  const auto out = schedule_flexible_distributed(scenario.network, requests, opt);
  const auto report =
      validate_schedule(scenario.network, requests, out.result.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(out.result.accepted_count() + out.result.rejected.size(), requests.size());
}

TEST(Distributed, StalenessNeverImprovesOnCentralized) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(300), 4.0);
  Rng rng{79};
  const auto requests = workload::generate(scenario.spec, rng);
  DistributedOptions stale;
  stale.policy = BandwidthPolicy::fraction_of_max(1.0);
  stale.sync_period = Duration::seconds(60);
  const auto with_staleness =
      schedule_flexible_distributed(scenario.network, requests, stale);
  const auto fresh = schedule_flexible_greedy(scenario.network, requests, stale.policy);
  // A stale view can only produce spurious NACKs/over-optimism, not find
  // capacity the centralized greedy missed... it can, however, reject a
  // request the centralized version accepted and thereby free room for a
  // later one. Allow a small slack rather than strict dominance.
  EXPECT_LE(with_staleness.result.accepted_count(),
            fresh.accepted_count() + requests.size() / 10);
}

TEST(Distributed, RejectsNegativeSyncPeriod) {
  const Network net = Network::uniform(1, 1, mbps(100));
  DistributedOptions opt;
  opt.sync_period = Duration::seconds(-1);
  EXPECT_THROW((void)schedule_flexible_distributed(net, std::vector<Request>{}, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::heuristics
