// Mutation tests for the validator — the oracle every other test leans on.
// Start from a known-valid schedule, apply a single corrupting mutation,
// and require the validator to flag it. If the oracle is blind to a class
// of corruption, the whole suite's guarantees silently weaken; this file
// pins each class.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

struct Fixture {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(300), 4.0);
  std::vector<Request> requests;
  Schedule valid;

  Fixture() {
    Rng rng{1001};
    requests = workload::generate(scenario.spec, rng);
    auto result = heuristics::schedule_flexible_greedy(
        scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(0.8));
    valid = std::move(result.schedule);
    // Preconditions of every mutation test.
    EXPECT_TRUE(validate_schedule(scenario.network, requests, valid).ok());
    EXPECT_GT(valid.accepted_count(), 10u);
  }

  /// Rebuilds the schedule with `mutate` applied to the `index`-th
  /// assignment (in assignments() order).
  Schedule mutated(std::size_t index, auto&& mutate) const {
    Schedule out;
    std::size_t k = 0;
    for (const Assignment& a : valid.assignments()) {
      Assignment m = a;
      if (k++ == index) mutate(m);
      out.accept(m.request, m.start, m.bw);
    }
    return out;
  }
};

TEST(ValidatorMutation, DetectsRateInflation) {
  const Fixture f;
  // Inflating one assignment's rate past MaxRate must be flagged.
  const auto mutant = f.mutated(3, [&](Assignment& a) {
    for (const Request& r : f.requests) {
      if (r.id == a.request) a.bw = r.max_rate * 1.2;
    }
  });
  const auto report = validate_schedule(f.scenario.network, f.requests, mutant);
  EXPECT_FALSE(report.ok());
}

TEST(ValidatorMutation, DetectsEarlyStart) {
  const Fixture f;
  const auto mutant = f.mutated(5, [](Assignment& a) {
    a.start = a.start - Duration::hours(1);
  });
  // Either start-before-release or (if release ~0) a port overlap appears;
  // the schedule must not validate cleanly unless the move is harmless —
  // an hour's shift on a tight greedy schedule never is.
  const auto report = validate_schedule(f.scenario.network, f.requests, mutant);
  EXPECT_FALSE(report.ok());
}

TEST(ValidatorMutation, DetectsDeadlineOverrun) {
  const Fixture f;
  const auto mutant = f.mutated(2, [&](Assignment& a) {
    // Slash the rate so the transfer cannot finish inside its window.
    for (const Request& r : f.requests) {
      if (r.id == a.request) a.bw = r.min_rate() * 0.2;
    }
  });
  const auto report = validate_schedule(f.scenario.network, f.requests, mutant);
  EXPECT_FALSE(report.ok());
}

TEST(ValidatorMutation, DetectsDuplicatedCapacityUse) {
  const Fixture f;
  // Re-point one accepted request's id at another accepted request: the
  // duplicate id is rejected by Schedule::accept itself.
  Schedule out;
  const auto assignments = f.valid.assignments();
  ASSERT_GE(assignments.size(), 2u);
  out.accept(assignments[0].request, assignments[0].start, assignments[0].bw);
  EXPECT_THROW(out.accept(assignments[0].request, assignments[1].start,
                          assignments[1].bw),
               std::logic_error);
}

TEST(ValidatorMutation, DetectsForeignRequestId) {
  const Fixture f;
  const auto mutant = f.mutated(1, [](Assignment& a) { a.request = 99999999; });
  const auto report = validate_schedule(f.scenario.network, f.requests, mutant);
  EXPECT_FALSE(report.ok());
}

TEST(ValidatorMutation, DetectsPortOverload) {
  // Directly: two full-port transfers overlapped on purpose.
  const Network net = Network::uniform(1, 1, Bandwidth::megabytes_per_second(100));
  std::vector<Request> rs;
  for (RequestId id = 1; id <= 2; ++id) {
    rs.push_back(RequestBuilder{id}
                     .from(IngressId{0})
                     .to(EgressId{0})
                     .window(TimePoint::at_seconds(0), TimePoint::at_seconds(100))
                     .volume(Volume::gigabytes(1))
                     .max_rate(Bandwidth::megabytes_per_second(100))
                     .build());
  }
  Schedule s;
  s.accept(1, TimePoint::at_seconds(0), Bandwidth::megabytes_per_second(100));
  s.accept(2, TimePoint::at_seconds(5), Bandwidth::megabytes_per_second(100));
  const auto report = validate_schedule(net, rs, s);
  EXPECT_FALSE(report.ok());
}

TEST(ValidatorMutation, GuaranteeFloorMutationDetected) {
  const Fixture f;
  // The valid schedule satisfies f = 0.8; nudging one rate below the
  // floor (but above MinRate) must fail the floor check specifically.
  EXPECT_TRUE(validate_schedule(f.scenario.network, f.requests, f.valid, 0.8).ok());
  // Find an assignment whose feasible floor sits below 0.5 x MaxRate, so
  // lowering the rate to 0.5 x MaxRate stays deadline-feasible but breaks
  // the f = 0.8 guarantee.
  std::size_t target = 0;
  bool found = false;
  for (std::size_t k = 0; k < f.valid.assignments().size() && !found; ++k) {
    const Assignment& a = f.valid.assignments()[k];
    for (const Request& r : f.requests) {
      if (r.id == a.request && r.min_rate_from(a.start) < r.max_rate * 0.5) {
        target = k;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  const auto mutant = f.mutated(target, [&](Assignment& a) {
    for (const Request& r : f.requests) {
      if (r.id == a.request) {
        a.bw = max(r.min_rate_from(a.start), r.max_rate * 0.5);
      }
    }
  });
  const auto strict = validate_schedule(f.scenario.network, f.requests, mutant, 0.8);
  const auto loose = validate_schedule(f.scenario.network, f.requests, mutant, 0.0);
  // Under the floor the mutant fails; without it, the mutation alone
  // (lower rate, same start) can only shrink port usage, so it passes.
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(loose.ok()) << loose.to_string();
}

}  // namespace
}  // namespace gridbw
