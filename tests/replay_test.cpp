// Tests for the data-plane replay: policed execution keeps every promise;
// unpoliced execution breaks them exactly when senders misbehave.

#include <gtest/gtest.h>

#include <vector>

#include "dataplane/replay.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::dataplane {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

struct Fixture {
  Network net = Network::uniform(1, 1, mbps(100));
  std::vector<Request> requests;
  Schedule schedule;

  /// Two 50 MB/s transfers sharing the port exactly, [0, 20) each.
  Fixture() {
    for (RequestId id = 1; id <= 2; ++id) {
      requests.push_back(RequestBuilder{id}
                             .from(IngressId{0})
                             .to(EgressId{0})
                             .window(at(0), at(40))
                             .volume(Volume::gigabytes(1))
                             .max_rate(mbps(100))
                             .build());
      schedule.accept(id, at(0), mbps(50));
    }
  }
};

TEST(ReplayPoliced, ConformingSendersKeepAllPromises) {
  Fixture f;
  const auto report = replay_policed(f.net, f.requests, f.schedule);
  ASSERT_EQ(report.transfers.size(), 2u);
  EXPECT_EQ(report.late_count(), 0u);
  EXPECT_EQ(report.total_dropped(), Volume::zero());
  for (const auto& t : report.transfers) {
    EXPECT_NEAR(t.actual_finish.to_seconds(), 20.0, 1e-6);
    EXPECT_FALSE(t.misbehaving);
  }
  EXPECT_NEAR(report.peak_port_utilization, 1.0, 1e-9);
}

TEST(ReplayPoliced, MisbehaverIsClippedNotRewarded) {
  Fixture f;
  ReplayOptions opt;
  opt.misbehaving = {1};
  opt.misbehave_factor = 3.0;
  const auto report = replay_policed(f.net, f.requests, f.schedule, opt);
  EXPECT_EQ(report.late_count(), 0u);  // schedule unaffected
  for (const auto& t : report.transfers) {
    if (t.id == 1) {
      EXPECT_TRUE(t.misbehaving);
      EXPECT_NEAR(t.dropped.to_gigabytes(), 2.0, 1e-6);  // (3-1) x 1 GB
    } else {
      EXPECT_EQ(t.dropped, Volume::zero());
    }
  }
  // The port never carries more than admitted.
  EXPECT_LE(report.peak_port_utilization, 1.0 + 1e-9);
}

TEST(ReplayUnpoliced, ConformingOnlyExecutesExactly) {
  Fixture f;
  const auto report = replay_unpoliced(f.net, f.requests, f.schedule);
  EXPECT_EQ(report.late_count(), 0u);
  for (const auto& t : report.transfers) {
    EXPECT_NEAR(t.actual_finish.to_seconds(), t.promised_finish.to_seconds(), 1e-3);
  }
}

TEST(ReplayUnpoliced, MisbehaverDelaysConformingFlows) {
  Fixture f;
  ReplayOptions opt;
  opt.misbehaving = {1};
  opt.misbehave_factor = 3.0;
  const auto report = replay_unpoliced(f.net, f.requests, f.schedule, opt);
  // Max-min with offers {150, 50}: both start at 50/50... the misbehaver's
  // extra offer only helps once the conformer finishes; equal split means
  // the conformer still finishes on time here. Force the squeeze instead:
  // conformer reserved 80, misbehaver reserved 20 offering 60. Max-min
  // gives 50/50 -> the conformer runs at 50 < 80 and is late.
  Network net = Network::uniform(1, 1, mbps(100));
  std::vector<Request> rs;
  Schedule s;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(at(0), at(40))
                   .volume(Volume::gigabytes(0.8))
                   .max_rate(mbps(100))
                   .build());
  s.accept(1, at(0), mbps(80));  // promised finish: 10 s
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(at(0), at(400))
                   .volume(Volume::gigabytes(0.2))
                   .max_rate(mbps(100))
                   .build());
  s.accept(2, at(0), mbps(20));
  ReplayOptions squeeze;
  squeeze.misbehaving = {2};
  squeeze.misbehave_factor = 3.0;  // offers 60
  const auto squeezed = replay_unpoliced(net, rs, s, squeeze);
  ASSERT_EQ(squeezed.transfers.size(), 2u);
  std::size_t late_conforming = 0;
  for (const auto& t : squeezed.transfers) {
    if (!t.misbehaving && t.late()) ++late_conforming;
  }
  EXPECT_EQ(late_conforming, 1u);
  (void)report;
}

TEST(Replay, LargeScheduleKeepsPromisesUnderPolicing) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(300), 4.0);
  Rng rng{601};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto result = heuristics::schedule_flexible_greedy(
      scenario.network, requests, heuristics::BandwidthPolicy::fraction_of_max(0.8));
  ReplayOptions opt;
  // Every third accepted request misbehaves.
  std::size_t k = 0;
  for (const Assignment& a : result.schedule.assignments()) {
    if (++k % 3 == 0) opt.misbehaving.push_back(a.request);
  }
  const auto report = replay_policed(scenario.network, requests, result.schedule, opt);
  EXPECT_EQ(report.late_count(), 0u);
  EXPECT_LE(report.peak_port_utilization, 1.0 + 1e-6);
  EXPECT_GT(report.total_dropped().to_bytes(), 0.0);
}

TEST(Replay, Validation) {
  Fixture f;
  Schedule alien;
  alien.accept(99, at(0), mbps(10));
  EXPECT_THROW((void)replay_policed(f.net, f.requests, alien), std::invalid_argument);
  ReplayOptions opt;
  opt.misbehaving = {1};
  opt.misbehave_factor = 1.0;
  EXPECT_THROW((void)replay_policed(f.net, f.requests, f.schedule, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::dataplane
