// Unit tests for the discrete-event queue.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridbw::sim {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending_count(), 0u);
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  (void)q.push(at(3), [&] { fired.push_back(3); });
  (void)q.push(at(1), [&] { fired.push_back(1); });
  (void)q.push(at(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    (void)q.push(at(7), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NextTimeSeesEarliest) {
  EventQueue q;
  (void)q.push(at(5), [] {});
  (void)q.push(at(2), [] {});
  EXPECT_EQ(q.next_time(), at(2));
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(at(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(999999));
}

TEST(EventQueue, CancelledEntrySkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.push(at(1), [&] { fired.push_back(1); });
  (void)q.push(at(2), [&] { fired.push_back(2); });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.next_time(), at(2));
  q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(at(1), [] {});
  (void)q.push(at(2), [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  (void)q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  (void)q.pop();
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(at(4.5), [] {});
  const Event e = q.pop();
  EXPECT_EQ(e.time, at(4.5));
  EXPECT_EQ(e.id, id);
}

}  // namespace
}  // namespace gridbw::sim
