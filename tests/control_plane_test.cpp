// Tests for the message-level reservation control plane.

#include <gtest/gtest.h>

#include <vector>

#include "control/control_plane.hpp"
#include "control/messages.hpp"
#include "core/validate.hpp"
#include "workload/generator.hpp"

namespace gridbw::control {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request transfer(RequestId id, double ts, double gb, double max_mbps, double slack,
                 std::size_t in, std::size_t out) {
  const Volume vol = Volume::gigabytes(gb);
  const Duration fastest = vol / mbps(max_mbps);
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .window(at(ts), at(ts) + fastest * slack)
      .volume(vol)
      .max_rate(mbps(max_mbps))
      .build();
}

TEST(ControlPlane, GrantsSingleRequest) {
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0, 0, 2)};
  ControlPlaneOptions opt;
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  const auto report = run_control_plane(topo, rs, opt);
  EXPECT_EQ(report.result.accepted_count(), 1u);
  EXPECT_EQ(report.egress_conflicts, 0u);
  // Accept + completion each broadcast to the 3 other routers.
  EXPECT_EQ(report.control_messages, 6u);
}

TEST(ControlPlane, ResponseTimeIsTwoLocalHops) {
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0, 0, 2)};
  const auto report = run_control_plane(topo, rs);
  ASSERT_EQ(report.response_time_s.count(), 1u);
  EXPECT_NEAR(report.response_time_s.mean(),
              2.0 * topo.site(0).local_latency.to_seconds(), 1e-12);
}

TEST(ControlPlane, ResultValidatesAgainstDataPlane) {
  const auto topo = OverlayTopology::grid5000_like(6);
  workload::WorkloadSpec spec;
  spec.ingress_count = 6;
  spec.egress_count = 6;
  spec.mean_interarrival = Duration::seconds(1);
  spec.horizon = Duration::seconds(300);
  spec.slack = workload::SlackLaw::flexible(1.5, 4.0);
  Rng rng{81};
  const auto requests = workload::generate(spec, rng);
  ControlPlaneOptions opt;
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
  const auto report = run_control_plane(topo, requests, opt);
  const auto validation =
      validate_schedule(topo.data_plane(), requests, report.result.schedule);
  EXPECT_TRUE(validation.ok()) << validation.to_string();
  EXPECT_EQ(report.result.accepted_count() + report.result.rejected.size(),
            requests.size());
}

TEST(ControlPlane, ConcurrentRacesAreCountedAsConflicts) {
  // Two requests from different sites target egress 2 within one mesh
  // latency (10 ms): the second decision still sees a stale (empty) view.
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0.000, 1, 900, 4.0, 0, 2),
                                transfer(2, 0.001, 1, 900, 4.0, 1, 2)};
  ControlPlaneOptions opt;
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  const auto report = run_control_plane(topo, rs, opt);
  EXPECT_EQ(report.result.accepted_count(), 1u);
  EXPECT_EQ(report.egress_conflicts, 1u);
}

TEST(ControlPlane, ViewsConvergeAfterMeshLatency) {
  // Same race but the second request arrives after the broadcast landed:
  // it is rejected locally, with no enforcement conflict.
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0.000, 1, 900, 4.0, 0, 2),
                                transfer(2, 0.100, 1, 900, 4.0, 1, 2)};
  ControlPlaneOptions opt;
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  const auto report = run_control_plane(topo, rs, opt);
  EXPECT_EQ(report.result.accepted_count(), 1u);
  EXPECT_EQ(report.egress_conflicts, 0u);
}

TEST(ControlPlane, WireLogIsReplayableAndConsistent) {
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0, 0, 2),
                                transfer(2, 1, 1, 900, 4.0, 1, 2),
                                transfer(3, 2, 1, 900, 4.0, 2, 2)};
  ControlPlaneOptions opt;
  opt.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  opt.record_wire_log = true;
  const auto report = run_control_plane(topo, rs, opt);

  ASSERT_FALSE(report.wire_log.empty());
  std::size_t resv = 0, grant = 0, reject = 0, tear = 0;
  for (const std::string& line : report.wire_log) {
    const auto parsed = parse_message(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (std::holds_alternative<ResvMessage>(*parsed)) ++resv;
    if (std::holds_alternative<GrantMessage>(*parsed)) ++grant;
    if (std::holds_alternative<RejectMessage>(*parsed)) ++reject;
    if (std::holds_alternative<TearMessage>(*parsed)) ++tear;
  }
  EXPECT_EQ(resv, rs.size());
  EXPECT_EQ(grant, report.result.accepted_count());
  EXPECT_EQ(reject, report.result.rejected.size());
  EXPECT_EQ(tear, report.result.accepted_count());  // every grant tears down
}

TEST(ControlPlane, WireLogOffByDefault) {
  const auto topo = OverlayTopology::grid5000_like(4);
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0, 0, 2)};
  const auto report = run_control_plane(topo, rs);
  EXPECT_TRUE(report.wire_log.empty());
}

TEST(ControlPlane, RejectsRequestsOutsideTopology) {
  const auto topo = OverlayTopology::grid5000_like(3);
  const std::vector<Request> rs{transfer(1, 0, 1, 100, 4.0, 0, 5)};
  EXPECT_THROW((void)run_control_plane(topo, rs), std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::control
