// Robustness fuzzing for every text-input surface: the message parser, the
// trace reader, the schedule reader, the config parser, and the scheduler
// spec parser. Property: arbitrary garbage never crashes, never corrupts —
// it either parses cleanly or reports failure through the documented
// channel (nullopt / exception).

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>

#include "control/messages.hpp"
#include "core/schedule_io.hpp"
#include "heuristics/parse.hpp"
#include "util/config.hpp"
#include "util/random.hpp"
#include "workload/trace.hpp"

namespace gridbw {
namespace {

/// Random printable-ish line, biased toward the tokens the parsers use so
/// the fuzz reaches deeper branches than pure noise would.
std::string random_line(Rng& rng) {
  static const char* kFragments[] = {
      "RESV",  "GRANT", "REJECT", "TEAR",  "id",   "in",    "out",  "ts",
      "tf",    "vol",   "max",    "start", "bw",   "reason", "=",   "|",
      ",",     ".",     "-",      "1e9",   "42",   "0.5",    "abc", "[s]",
      "key",   "value", "#",      ";",     "\t",   " ",      "window", "step",
      "greedy", "f",    "minrate", ":",    "1.5e300", "-7",  "nan",  "inf"};
  std::string line;
  const auto pieces = static_cast<std::size_t>(rng.uniform_int(0, 14));
  for (std::size_t p = 0; p < pieces; ++p) {
    line += kFragments[rng.uniform_int(0, std::size(kFragments) - 1)];
  }
  return line;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MessageParserNeverCrashes) {
  Rng rng{GetParam()};
  for (int i = 0; i < 2000; ++i) {
    const std::string line = random_line(rng);
    const auto parsed = control::parse_message(line);
    if (parsed.has_value()) {
      // Anything that parses must serialize back to something that parses
      // to the same message (round-trip stability).
      const auto again = control::parse_message(control::serialize(*parsed));
      ASSERT_TRUE(again.has_value()) << line;
    }
  }
}

TEST_P(ParserFuzz, TraceReaderThrowsCleanly) {
  Rng rng{GetParam() + 1};
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss;
    ss << "id,ingress,egress,release_s,deadline_s,volume_bytes,max_rate_bps\n";
    const auto lines = rng.uniform_int(1, 4);
    for (int l = 0; l < lines; ++l) ss << random_line(rng) << "\n";
    try {
      const auto requests = workload::read_trace(ss);
      for (const Request& r : requests) EXPECT_TRUE(r.is_well_formed());
    } catch (const std::runtime_error&) {
      // documented failure channel
    }
  }
}

TEST_P(ParserFuzz, ScheduleReaderThrowsCleanly) {
  Rng rng{GetParam() + 2};
  for (int i = 0; i < 300; ++i) {
    std::stringstream ss;
    ss << "request,start_s,bw_bps\n";
    const auto lines = rng.uniform_int(1, 4);
    for (int l = 0; l < lines; ++l) ss << random_line(rng) << "\n";
    try {
      (void)read_schedule(ss);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzz, ConfigParserThrowsCleanly) {
  Rng rng{GetParam() + 3};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const auto lines = rng.uniform_int(0, 6);
    for (int l = 0; l < lines; ++l) text += random_line(rng) + "\n";
    try {
      const auto cfg = Config::parse_string(text);
      for (const auto& key : cfg.keys()) EXPECT_TRUE(cfg.has(key));
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzz, SchedulerSpecParserThrowsCleanly) {
  Rng rng{GetParam() + 4};
  for (int i = 0; i < 1000; ++i) {
    try {
      const auto scheduler = heuristics::parse_scheduler(random_line(rng));
      EXPECT_FALSE(scheduler.name.empty());
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11000, 12000, 13000));

}  // namespace
}  // namespace gridbw
