// Tests for the RSVP-like message wire format.

#include <gtest/gtest.h>

#include "control/messages.hpp"

namespace gridbw::control {
namespace {

Request sample_request() {
  return RequestBuilder{42}
      .from(IngressId{3})
      .to(EgressId{7})
      .window(TimePoint::at_seconds(10.5), TimePoint::at_seconds(110.5))
      .volume(Volume::gigabytes(50))
      .max_rate(Bandwidth::gigabytes_per_second(1))
      .build();
}

TEST(Messages, ResvRoundTrip) {
  const Message original{ResvMessage{sample_request()}};
  const auto parsed = parse_message(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(std::holds_alternative<ResvMessage>(*parsed));
  EXPECT_EQ(std::get<ResvMessage>(*parsed), std::get<ResvMessage>(original));
}

TEST(Messages, GrantRoundTrip) {
  const Message original{GrantMessage{42, TimePoint::at_seconds(12.25),
                                      Bandwidth::megabytes_per_second(800)}};
  const auto parsed = parse_message(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<GrantMessage>(*parsed), std::get<GrantMessage>(original));
}

TEST(Messages, RejectRoundTrip) {
  const Message original{RejectMessage{7, "egress-full"}};
  const auto parsed = parse_message(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<RejectMessage>(*parsed), std::get<RejectMessage>(original));
}

TEST(Messages, TearRoundTrip) {
  const Message original{
      TearMessage{42, EgressId{7}, Bandwidth::megabytes_per_second(800)}};
  const auto parsed = parse_message(serialize(original));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<TearMessage>(*parsed), std::get<TearMessage>(original));
}

TEST(Messages, SerializedFormIsStable) {
  const Message grant{GrantMessage{5, TimePoint::at_seconds(2),
                                   Bandwidth::bytes_per_second(1e9)}};
  EXPECT_EQ(serialize(grant), "GRANT|id=5|start=2|bw=1e+09");
  const Message reject{RejectMessage{5, "ingress-full"}};
  EXPECT_EQ(serialize(reject), "REJECT|id=5|reason=ingress-full");
}

TEST(Messages, RejectsUnknownKind) {
  EXPECT_FALSE(parse_message("NOPE|id=1").has_value());
  EXPECT_FALSE(parse_message("").has_value());
  EXPECT_FALSE(parse_message("|id=1").has_value());
}

TEST(Messages, RejectsMissingFields) {
  EXPECT_FALSE(parse_message("GRANT|id=5|start=2").has_value());  // no bw
  EXPECT_FALSE(parse_message("TEAR|id=5|bw=1").has_value());      // no egress
  EXPECT_FALSE(parse_message("REJECT|id=5").has_value());         // no reason
}

TEST(Messages, RejectsUnknownAndDuplicateFields) {
  EXPECT_FALSE(parse_message("GRANT|id=5|start=2|bw=1|junk=9").has_value());
  EXPECT_FALSE(parse_message("GRANT|id=5|id=6|start=2|bw=1").has_value());
}

TEST(Messages, RejectsNonNumericValues) {
  EXPECT_FALSE(parse_message("GRANT|id=abc|start=2|bw=1").has_value());
  EXPECT_FALSE(parse_message("GRANT|id=5|start=2x|bw=1").has_value());
}

TEST(Messages, RejectsIllFormedResvPayload) {
  // deadline before release
  EXPECT_FALSE(
      parse_message("RESV|id=1|in=0|out=0|ts=10|tf=5|vol=1e9|max=1e9").has_value());
  // zero volume
  EXPECT_FALSE(
      parse_message("RESV|id=1|in=0|out=0|ts=0|tf=10|vol=0|max=1e9").has_value());
}

TEST(Messages, ParsesHandWrittenResv) {
  const auto parsed =
      parse_message("RESV|id=9|in=2|out=4|ts=1.5|tf=21.5|vol=2e9|max=1e8");
  ASSERT_TRUE(parsed.has_value());
  const Request& r = std::get<ResvMessage>(*parsed).request;
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.ingress.value, 2u);
  EXPECT_EQ(r.egress.value, 4u);
  EXPECT_DOUBLE_EQ(r.volume.to_bytes(), 2e9);
  EXPECT_DOUBLE_EQ(r.min_rate().to_bytes_per_second(), 1e8);
}

}  // namespace
}  // namespace gridbw::control
