// Tests for the token-bucket policer primitive.

#include <gtest/gtest.h>

#include "control/token_bucket.hpp"

namespace gridbw::control {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }
Volume mb(double m) { return Volume::megabytes(m); }

TEST(TokenBucket, StartsFull) {
  TokenBucket tb{mbps(10), mb(5)};
  EXPECT_EQ(tb.tokens_at(at(0)), mb(5));
  EXPECT_TRUE(tb.try_consume(at(0), mb(5)));
  EXPECT_FALSE(tb.try_consume(at(0), mb(0.001)));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb{mbps(10), mb(5)};
  ASSERT_TRUE(tb.try_consume(at(0), mb(5)));
  // After 0.2 s: 2 MB of tokens.
  EXPECT_NEAR(tb.tokens_at(at(0.2)).to_bytes(), 2e6, 1.0);
  EXPECT_TRUE(tb.try_consume(at(0.2), mb(2)));
  EXPECT_FALSE(tb.try_consume(at(0.2), mb(0.5)));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb{mbps(10), mb(5)};
  ASSERT_TRUE(tb.try_consume(at(0), mb(5)));
  // After a long idle period tokens cap at the burst size.
  EXPECT_EQ(tb.tokens_at(at(1000)), mb(5));
}

TEST(TokenBucket, AllOrNothingConsume) {
  TokenBucket tb{mbps(10), mb(5)};
  EXPECT_FALSE(tb.try_consume(at(0), mb(6)));
  // The failed attempt must not have consumed anything.
  EXPECT_TRUE(tb.try_consume(at(0), mb(5)));
}

TEST(TokenBucket, ConsumeUpToGrantsPartial) {
  TokenBucket tb{mbps(10), mb(5)};
  EXPECT_EQ(tb.consume_up_to(at(0), mb(8)), mb(5));
  EXPECT_EQ(tb.consume_up_to(at(0), mb(1)), Volume::zero());
  EXPECT_NEAR(tb.consume_up_to(at(0.1), mb(8)).to_bytes(), 1e6, 1.0);
}

TEST(TokenBucket, SustainedRateIsEnforced) {
  TokenBucket tb{mbps(10), mb(1)};
  // Offer 20 MB/s for 10 s in 0.1 s quanta. Each quantum refills exactly
  // one bucket's worth (the burst cap), so delivered == rate * time.
  Volume delivered = Volume::zero();
  for (int k = 1; k <= 100; ++k) {
    delivered += tb.consume_up_to(at(0.1 * k), mb(2));
  }
  EXPECT_NEAR(delivered.to_bytes(), 10e6 * 10, 1e3);
}

TEST(TokenBucket, ConformingFlowNeverDropped) {
  TokenBucket tb{mbps(10), mb(1)};
  for (int k = 1; k <= 1000; ++k) {
    EXPECT_TRUE(tb.try_consume(at(0.1 * k), mb(1)));  // exactly the rate
  }
}

TEST(TokenBucket, TimeMustNotGoBackwards) {
  TokenBucket tb{mbps(10), mb(1)};
  ASSERT_TRUE(tb.try_consume(at(5), mb(1)));
  EXPECT_THROW((void)tb.try_consume(at(4), mb(0.1)), std::invalid_argument);
  EXPECT_THROW((void)tb.tokens_at(at(1)), std::invalid_argument);
}

TEST(TokenBucket, RejectsBadParameters) {
  EXPECT_THROW((TokenBucket{Bandwidth::zero(), mb(1)}), std::invalid_argument);
  EXPECT_THROW((TokenBucket{mbps(1), Volume::zero()}), std::invalid_argument);
}

}  // namespace
}  // namespace gridbw::control
