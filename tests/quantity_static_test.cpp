// Compile-time proof that the strong quantity types are actually strong:
// no implicit conversions to or from raw double, none between distinct
// units, and dimensional arithmetic yields exactly the right unit type.
// Every claim is a static_assert (or a `requires`-based negative check,
// the C++20 equivalent of a compile-fail test: the assert fails to compile
// the moment someone adds the forbidden overload), so this file passing
// the *compiler* is the test — the runtime bodies only anchor it in ctest.

#include "util/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace gridbw {
namespace {

// ---------------------------------------------------------------------------
// No implicit conversions to/from double: constructors are private and there
// is no conversion operator. Explicit factories / accessors are the only
// doors in and out.
// ---------------------------------------------------------------------------

template <typename Q>
constexpr bool double_tight =
    !std::is_convertible_v<double, Q> && !std::is_convertible_v<Q, double> &&
    !std::is_constructible_v<Q, double> && !std::is_assignable_v<Q&, double>;

static_assert(double_tight<Duration>);
static_assert(double_tight<TimePoint>);
static_assert(double_tight<Volume>);
static_assert(double_tight<Bandwidth>);

// ---------------------------------------------------------------------------
// No conversions between distinct units (a Bandwidth is not a Volume, even
// though both wrap a double).
// ---------------------------------------------------------------------------

template <typename A, typename B>
constexpr bool unrelated =
    !std::is_convertible_v<A, B> && !std::is_convertible_v<B, A> &&
    !std::is_constructible_v<A, B> && !std::is_constructible_v<B, A>;

static_assert(unrelated<Duration, TimePoint>);
static_assert(unrelated<Duration, Volume>);
static_assert(unrelated<Duration, Bandwidth>);
static_assert(unrelated<TimePoint, Volume>);
static_assert(unrelated<TimePoint, Bandwidth>);
static_assert(unrelated<Volume, Bandwidth>);

// ---------------------------------------------------------------------------
// Dimensional arithmetic yields exactly the right type.
// ---------------------------------------------------------------------------

static_assert(std::is_same_v<decltype(Volume::gigabytes(1) / Duration::seconds(1)),
                             Bandwidth>);
static_assert(std::is_same_v<decltype(Volume::gigabytes(1) /
                                      Bandwidth::megabytes_per_second(1)),
                             Duration>);
static_assert(std::is_same_v<decltype(Bandwidth::megabytes_per_second(1) *
                                      Duration::seconds(1)),
                             Volume>);
static_assert(std::is_same_v<decltype(Duration::seconds(1) *
                                      Bandwidth::megabytes_per_second(1)),
                             Volume>);
static_assert(std::is_same_v<decltype(TimePoint::origin() + Duration::seconds(1)),
                             TimePoint>);
static_assert(std::is_same_v<decltype(TimePoint::origin() - TimePoint::origin()),
                             Duration>);
// Same-unit ratios are dimensionless scalars.
static_assert(std::is_same_v<decltype(Duration::seconds(2) / Duration::seconds(1)),
                             double>);
static_assert(std::is_same_v<decltype(Volume::bytes(2) / Volume::bytes(1)), double>);
static_assert(std::is_same_v<decltype(Bandwidth::bytes_per_second(2) /
                                      Bandwidth::bytes_per_second(1)),
                             double>);

// ---------------------------------------------------------------------------
// Forbidden expressions do not compile (requires-based compile-fail checks).
// ---------------------------------------------------------------------------

// A requires-expression only has a SFINAE context inside a template, so the
// "does not compile" probes are variable templates: an invalid expression
// makes the trait false instead of a hard error, and the static_asserts
// below turn each forbidden overload into a pinned contract.
template <typename A, typename B>
constexpr bool can_add = requires(A a, B b) { a + b; };
template <typename A, typename B>
constexpr bool can_mul = requires(A a, B b) { a * b; };
template <typename A, typename B>
constexpr bool can_div = requires(A a, B b) { a / b; };
template <typename A, typename B>
constexpr bool can_compare = requires(A a, B b) { a < b; };
template <typename A, typename B>
constexpr bool can_equate = requires(A a, B b) { a == b; };

static_assert(!can_add<Volume, Bandwidth>, "volume + rate must not compile");
static_assert(!can_add<Volume, Duration>, "volume + duration must not compile");
static_assert(!can_add<TimePoint, TimePoint>, "instant + instant must not compile");
static_assert(!can_mul<Bandwidth, Bandwidth>, "rate * rate must not compile");
static_assert(!can_mul<Volume, Volume>, "volume * volume must not compile");
static_assert(!can_mul<TimePoint, double>, "instant * scalar must not compile");
static_assert(!can_div<Bandwidth, Duration>, "rate / time has no unit in this model");
static_assert(!can_div<Duration, Volume>, "time / volume has no unit in this model");
static_assert(!can_add<Bandwidth, double>, "rate + raw double must not compile");
static_assert(!can_compare<Duration, Bandwidth>, "cross-unit comparison must not compile");
static_assert(!can_equate<Volume, TimePoint>, "cross-unit equality must not compile");

// Scalar scaling IS allowed (bandwidth * 0.5 etc.), in both orders.
static_assert(can_mul<Bandwidth, double>);
static_assert(can_mul<double, Bandwidth>);
static_assert(can_div<Duration, double>);
static_assert(can_mul<Volume, double>);

// ---------------------------------------------------------------------------
// The wrappers stay free abstractions.
// ---------------------------------------------------------------------------

static_assert(std::is_trivially_copyable_v<Duration>);
static_assert(std::is_trivially_copyable_v<TimePoint>);
static_assert(std::is_trivially_copyable_v<Volume>);
static_assert(std::is_trivially_copyable_v<Bandwidth>);
static_assert(sizeof(Duration) == sizeof(double));
static_assert(sizeof(TimePoint) == sizeof(double));
static_assert(sizeof(Volume) == sizeof(double));
static_assert(sizeof(Bandwidth) == sizeof(double));

// Anchor the translation unit in ctest so the suite is visibly green.
TEST(QuantityStatic, CompileTimeContractsHold) { SUCCEED(); }

// A couple of constexpr identities, evaluated at compile time too.
static_assert(Duration::minutes(1).to_seconds() == 60.0);
static_assert((Volume::gigabytes(1) / Duration::seconds(1)).to_bytes_per_second() ==
              1e9);
static_assert((Bandwidth::bytes_per_second(8) * Duration::seconds(2)).to_bytes() ==
              16.0);

TEST(QuantityStatic, ConstexprArithmeticAgreesAtRuntime) {
  EXPECT_EQ((Volume::megabytes(10) / Bandwidth::megabytes_per_second(2)).to_seconds(),
            5.0);
}

}  // namespace
}  // namespace gridbw
