// Unit tests for the --key=value flag parser.

#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace gridbw {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags{static_cast<int>(argv.size()), argv.data()};
}

TEST(Flags, ParsesKeyValue) {
  const Flags f = parse({"--load=2.5", "--name=fig4"});
  EXPECT_TRUE(f.has("load"));
  EXPECT_DOUBLE_EQ(f.get_double("load", 0.0), 2.5);
  EXPECT_EQ(f.get_string("name", ""), "fig4");
}

TEST(Flags, BareFlagIsTrue) {
  const Flags f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = parse({});
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, IntParsing) {
  const Flags f = parse({"--reps=32", "--neg=-7"});
  EXPECT_EQ(f.get_int("reps", 0), 32);
  EXPECT_EQ(f.get_int("neg", 0), -7);
}

TEST(Flags, BoolVariants) {
  const Flags f = parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  EXPECT_FALSE(f.get_bool("e", true));
}

TEST(Flags, DoubleList) {
  const Flags f = parse({"--f=0.2,0.5,0.8"});
  EXPECT_EQ(f.get_double_list("f", {}), (std::vector<double>{0.2, 0.5, 0.8}));
}

TEST(Flags, DoubleListFallback) {
  const Flags f = parse({});
  EXPECT_EQ(f.get_double_list("f", {1.0}), (std::vector<double>{1.0}));
}

TEST(Flags, PositionalArgumentsCollected) {
  const Flags f = parse({"pos1", "--k=v", "pos2"});
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Flags, LastValueWins) {
  const Flags f = parse({"--x=1", "--x=2"});
  EXPECT_EQ(f.get_int("x", 0), 2);
}

}  // namespace
}  // namespace gridbw
