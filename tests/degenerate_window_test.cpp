// Regression tests for degenerate request windows (ISSUE: slot_cost and
// Request::min_rate divide by `deadline - release`; a zero or negative
// window used to propagate an infinite/NaN MinRate through the admission
// math). Every scheduler must reject such requests up front — explicitly,
// in `rejected` — and leave the well-formed rest of the workload untouched.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "heuristics/distributed.hpp"
#include "heuristics/flexible_bookahead.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/flexible_window.hpp"
#include "heuristics/rigid_fcfs.hpp"
#include "heuristics/rigid_slots.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

/// One healthy request, one zero-length window, one inverted window. The
/// degenerates are built as raw aggregates on purpose: RequestBuilder throws
/// on them, but requests also enter through parsers/replay files, so the
/// schedulers themselves must reject `deadline <= release` up front instead
/// of dividing by the window length.
std::vector<Request> mixed_workload() {
  std::vector<Request> rs;
  rs.push_back(RequestBuilder{1}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(at(0), at(100))
                   .volume(Volume::megabytes(100))
                   .max_rate(mbps(10))
                   .build());
  rs.push_back(Request{2, IngressId{0}, EgressId{0}, at(50), at(50),  // zero-length
                       Volume::megabytes(1), mbps(10)});
  rs.push_back(Request{3, IngressId{1}, EgressId{1}, at(80), at(20),  // inverted
                       Volume::megabytes(1), mbps(10)});
  return rs;
}

bool rejects(const ScheduleResult& result, RequestId id) {
  return std::find(result.rejected.begin(), result.rejected.end(), id) !=
         result.rejected.end();
}

void expect_degenerates_rejected(const ScheduleResult& result, const char* what) {
  EXPECT_TRUE(result.schedule.is_accepted(1)) << what;
  EXPECT_FALSE(result.schedule.is_accepted(2)) << what;
  EXPECT_FALSE(result.schedule.is_accepted(3)) << what;
  EXPECT_TRUE(rejects(result, 2)) << what;
  EXPECT_TRUE(rejects(result, 3)) << what;
}

TEST(DegenerateWindow, RigidFcfsRejectsUpFront) {
  const Network net = Network::uniform(2, 2, mbps(100));
  expect_degenerates_rejected(heuristics::schedule_rigid_fcfs(net, mixed_workload()),
                              "fcfs");
}

TEST(DegenerateWindow, RigidSlotsRejectsUpFrontInBothEngines) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const auto requests = mixed_workload();
  for (const auto cost : {heuristics::SlotCost::kCumulated,
                          heuristics::SlotCost::kMinBandwidth,
                          heuristics::SlotCost::kMinVolume}) {
    for (const auto engine : {heuristics::SlotsEngine::kRebuild,
                              heuristics::SlotsEngine::kIncremental}) {
      const auto result =
          heuristics::schedule_rigid_slots(net, requests, cost, engine);
      expect_degenerates_rejected(
          result, (to_string(cost) + "/" + to_string(engine)).c_str());
    }
  }
}

TEST(DegenerateWindow, FlexibleGreedyRejectsUpFront) {
  const Network net = Network::uniform(2, 2, mbps(100));
  expect_degenerates_rejected(
      heuristics::schedule_flexible_greedy(
          net, mixed_workload(), heuristics::BandwidthPolicy::min_rate()),
      "greedy");
}

TEST(DegenerateWindow, FlexibleWindowRejectsUpFrontInBothEngines) {
  const Network net = Network::uniform(2, 2, mbps(100));
  const auto requests = mixed_workload();
  for (const auto engine :
       {heuristics::WindowEngine::kScan, heuristics::WindowEngine::kHeap}) {
    heuristics::WindowOptions opt;
    opt.step = Duration::seconds(10);
    opt.engine = engine;
    expect_degenerates_rejected(
        heuristics::schedule_flexible_window(net, requests, opt),
        to_string(engine).c_str());
  }
}

TEST(DegenerateWindow, BookAheadRejectsUpFront) {
  const Network net = Network::uniform(2, 2, mbps(100));
  heuristics::BookAheadOptions opt;
  opt.step = Duration::seconds(10);
  expect_degenerates_rejected(
      heuristics::schedule_flexible_bookahead(net, mixed_workload(), opt),
      "bookahead");
}

TEST(DegenerateWindow, DistributedRejectsUpFront) {
  const Network net = Network::uniform(2, 2, mbps(100));
  heuristics::DistributedOptions opt;
  expect_degenerates_rejected(
      heuristics::schedule_flexible_distributed(net, mixed_workload(), opt).result,
      "distributed");
}

TEST(DegenerateWindow, AllDegenerateWorkloadAcceptsNothing) {
  const Network net = Network::uniform(1, 1, mbps(100));
  std::vector<Request> rs;
  rs.push_back(Request{7, IngressId{0}, EgressId{0}, at(5), at(5),
                       Volume::megabytes(1), mbps(10)});
  for (const auto cost : {heuristics::SlotCost::kCumulated,
                          heuristics::SlotCost::kMinBandwidth,
                          heuristics::SlotCost::kMinVolume}) {
    const auto result = heuristics::schedule_rigid_slots(net, rs, cost);
    EXPECT_EQ(result.schedule.assignments().size(), 0u);
    EXPECT_TRUE(rejects(result, 7));
  }
}

}  // namespace
}  // namespace gridbw
