// Tests for the textual scheduler-spec parser.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "heuristics/parse.hpp"
#include "workload/generator.hpp"
#include "workload/scenario.hpp"

namespace gridbw::heuristics {
namespace {

TEST(ParseScheduler, RigidKinds) {
  EXPECT_EQ(parse_scheduler("fcfs").name, "FCFS");
  EXPECT_EQ(parse_scheduler("cumulated").name, "CUMULATED-SLOTS");
  EXPECT_EQ(parse_scheduler("minbw").name, "MINBW-SLOTS");
  EXPECT_EQ(parse_scheduler("minvol").name, "MINVOL-SLOTS");
}

TEST(ParseScheduler, GreedyVariants) {
  EXPECT_EQ(parse_scheduler("greedy:minrate").name, "greedy/minrate");
  EXPECT_EQ(parse_scheduler("greedy:f=0.8").name, "greedy/f=0.80");
  EXPECT_EQ(parse_scheduler("greedy:").name, "greedy/minrate");  // default
}

TEST(ParseScheduler, WindowVariants) {
  EXPECT_EQ(parse_scheduler("window:step=400,f=1").name, "window400/f=1.00");
  EXPECT_EQ(parse_scheduler("window:step=100,minrate").name, "window100/minrate");
  EXPECT_EQ(parse_scheduler("window:").name, "window400/minrate");  // defaults
  // hotspot weight is accepted and does not change the display name
  EXPECT_EQ(parse_scheduler("window:step=200,f=0.5,hotspot=1.5").name,
            "window200/f=0.50");
}

TEST(ParseScheduler, MalleableVariants) {
  EXPECT_EQ(parse_scheduler("mgreedy:minrate").name, "mgreedy/minrate");
  EXPECT_EQ(parse_scheduler("mgreedy:").name, "mgreedy/minrate");  // default
  EXPECT_EQ(parse_scheduler("mgreedy:rigid").name, "mgreedy/minrate-rigid");
  EXPECT_EQ(parse_scheduler("mwindow:step=400,f=1").name, "mwindow400/f=1.00");
  EXPECT_EQ(parse_scheduler("mwindow:").name, "mwindow400/minrate");  // defaults
  EXPECT_EQ(parse_scheduler("mwindow:step=100,rigid").name,
            "mwindow100/minrate-rigid");
  EXPECT_THROW((void)parse_scheduler("mwindow:step=0"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("mgreedy:step=100"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("mgreedy:rigid=1"), std::invalid_argument);
}

TEST(ParseScheduler, BookAheadVariant) {
  const auto s = parse_scheduler("bookahead:step=100,ahead=3,f=0.8");
  EXPECT_EQ(s.name, "bookahead100x3/f=0.80");
}

TEST(ParseScheduler, ErrorsNameTheProblem) {
  EXPECT_THROW((void)parse_scheduler("unknown"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("fcfs:step=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("window:step=-5"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("window:step=abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("window:bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("greedy:f=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("greedy:minrate,f=0.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("greedy:f=0.5,f=0.8"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("bookahead:ahead=-1"), std::invalid_argument);
  // std::stod parses "nan"/"inf" — the numeric gates must still refuse them.
  EXPECT_THROW((void)parse_scheduler("window:step=nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("window:step=inf"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("window:hotspot=nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler("bookahead:ahead=nan"), std::invalid_argument);
}

TEST(ParseScheduler, GrammarMentionsEveryKind) {
  const std::string grammar = scheduler_grammar();
  for (const char* kind : {"fcfs", "cumulated", "minbw", "minvol", "greedy", "window",
                           "bookahead"}) {
    EXPECT_NE(grammar.find(kind), std::string::npos) << kind;
  }
}

TEST(ParseScheduler, ParsedSchedulersActuallyRun) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(2), Duration::seconds(200), 4.0);
  Rng rng{501};
  const auto requests = workload::generate(scenario.spec, rng);
  for (const char* spec :
       {"fcfs", "cumulated", "minbw", "minvol", "greedy:f=1", "greedy:minrate",
        "window:step=50,f=0.8", "window:step=50,minrate,hotspot=1",
        "bookahead:step=50,ahead=3,f=1"}) {
    const auto scheduler = parse_scheduler(spec);
    const auto result = scheduler.run(scenario.network, requests);
    EXPECT_EQ(result.accepted_count() + result.rejected.size(), requests.size())
        << spec;
    const auto report =
        validate_schedule(scenario.network, requests, result.schedule);
    EXPECT_TRUE(report.ok()) << spec << ":\n" << report.to_string();
  }
}

}  // namespace
}  // namespace gridbw::heuristics
