// Unit and property tests for the piecewise-constant allocation profile.

#include "core/step_function.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

TEST(StepFunction, EmptyIsZeroEverywhere) {
  StepFunction f;
  EXPECT_TRUE(f.empty());
  EXPECT_DOUBLE_EQ(f.value_at(at(0)), 0.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(0), at(100)), 0.0);
  EXPECT_DOUBLE_EQ(f.global_max(), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(at(0), at(100)), 0.0);
}

TEST(StepFunction, SingleInterval) {
  StepFunction f;
  f.add(at(10), at(20), 5.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(9.99)), 0.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(10)), 5.0);   // right-continuous
  EXPECT_DOUBLE_EQ(f.value_at(at(15)), 5.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(20)), 0.0);   // half-open
}

TEST(StepFunction, OverlappingIntervalsStack) {
  StepFunction f;
  f.add(at(0), at(10), 1.0);
  f.add(at(5), at(15), 2.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(2)), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(7)), 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(12)), 2.0);
  EXPECT_DOUBLE_EQ(f.global_max(), 3.0);
}

TEST(StepFunction, NegativeDeltaReleases) {
  StepFunction f;
  f.add(at(0), at(10), 4.0);
  f.add(at(0), at(10), -4.0);
  EXPECT_DOUBLE_EQ(f.value_at(at(5)), 0.0);
  EXPECT_DOUBLE_EQ(f.global_max(), 0.0);
}

TEST(StepFunction, EmptyOrInvertedIntervalIsNoop) {
  StepFunction f;
  f.add(at(5), at(5), 3.0);
  f.add(at(6), at(2), 3.0);
  EXPECT_TRUE(f.empty());
}

TEST(StepFunction, MaxOverWindows) {
  StepFunction f;
  f.add(at(0), at(10), 1.0);
  f.add(at(4), at(6), 2.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(0), at(4)), 1.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(0), at(10)), 3.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(6), at(10)), 1.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(10), at(20)), 0.0);
  // Value holding at the window's left edge counts.
  EXPECT_DOUBLE_EQ(f.max_over(at(5), at(5.5)), 3.0);
}

TEST(StepFunction, MaxOverEmptyWindowIsZero) {
  StepFunction f;
  f.add(at(0), at(10), 7.0);
  EXPECT_DOUBLE_EQ(f.max_over(at(5), at(5)), 0.0);
}

TEST(StepFunction, IntegralOfRectangles) {
  StepFunction f;
  f.add(at(0), at(10), 2.0);   // area 20
  f.add(at(5), at(10), 3.0);   // area 15
  EXPECT_DOUBLE_EQ(f.integral(at(0), at(10)), 35.0);
  EXPECT_DOUBLE_EQ(f.integral(at(0), at(5)), 10.0);
  EXPECT_DOUBLE_EQ(f.integral(at(2.5), at(7.5)), 5.0 + 2.5 * 3.0 + 2.5 * 2.0);
  EXPECT_DOUBLE_EQ(f.integral(at(-10), at(0)), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(at(20), at(30)), 0.0);
}

TEST(StepFunction, IntegralPartiallyBeforeFunction) {
  StepFunction f;
  f.add(at(10), at(20), 1.0);
  EXPECT_DOUBLE_EQ(f.integral(at(0), at(15)), 5.0);
  EXPECT_DOUBLE_EQ(f.integral(at(15), at(100)), 5.0);
}

TEST(StepFunction, BreakpointsAreChangePoints) {
  StepFunction f;
  f.add(at(1), at(3), 1.0);
  f.add(at(2), at(3), 1.0);  // deltas at 3 accumulate
  const auto pts = f.breakpoints();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0], at(1));
  EXPECT_EQ(pts[1], at(2));
  EXPECT_EQ(pts[2], at(3));
}

TEST(StepFunction, CompactRemovesCancelledBreakpoints) {
  StepFunction f;
  f.add(at(1), at(2), 3.0);
  f.add(at(1), at(2), -3.0);
  f.add(at(5), at(6), 1.0);
  f.compact();
  const auto pts = f.breakpoints();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], at(5));
}

// ---------------------------------------------------------------------------
// Property test: random interval stacks vs a brute-force dense evaluation.
// ---------------------------------------------------------------------------

struct Interval {
  double lo, hi, delta;
};

double brute_value(const std::vector<Interval>& xs, double t) {
  double acc = 0.0;
  for (const auto& iv : xs) {
    if (iv.lo <= t && t < iv.hi) acc += iv.delta;
  }
  return acc;
}

class StepFunctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionProperty, AgreesWithBruteForceOnRandomStacks) {
  Rng rng{GetParam()};
  std::vector<Interval> xs;
  StepFunction f;
  for (int k = 0; k < 40; ++k) {
    const double lo = rng.uniform(0, 90);
    const double hi = lo + rng.uniform(0.5, 15);
    const double delta = rng.uniform(0.1, 4.0);
    xs.push_back({lo, hi, delta});
    f.add(at(lo), at(hi), delta);
  }
  // Values agree on a dense grid.
  for (double t = -1.0; t <= 110.0; t += 0.73) {
    EXPECT_NEAR(f.value_at(at(t)), brute_value(xs, t), 1e-9) << "t=" << t;
  }
  // max_over agrees with a dense scan (grid includes all breakpoints).
  std::vector<double> grid;
  for (const auto& iv : xs) {
    grid.push_back(iv.lo);
    grid.push_back(iv.hi);
  }
  const double w_lo = 10.0, w_hi = 60.0;
  double brute_max = brute_value(xs, w_lo);
  for (double g : grid) {
    if (g >= w_lo && g < w_hi) brute_max = std::max(brute_max, brute_value(xs, g));
  }
  EXPECT_NEAR(f.max_over(at(w_lo), at(w_hi)), brute_max, 1e-9);
  // Integral agrees with fine Riemann sum.
  double riemann = 0.0;
  const double dt = 0.01;
  for (double t = w_lo; t < w_hi; t += dt) riemann += brute_value(xs, t) * dt;
  EXPECT_NEAR(f.integral(at(w_lo), at(w_hi)), riemann, 0.5);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StepFunctionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Property test: compaction never changes observable values beyond its
// tolerance, and is idempotent.
// ---------------------------------------------------------------------------

class StepFunctionCompactProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionCompactProperty, CompactPreservesValuesAndIsIdempotent) {
  Rng rng{GetParam()};
  StepFunction f;
  std::vector<std::pair<double, double>> windows;
  for (int k = 0; k < 120; ++k) {
    const double lo = rng.uniform(0, 500);
    const double hi = lo + rng.uniform(0.5, 50);
    const double delta = rng.uniform(0.1, 5.0);
    f.add(at(lo), at(hi), delta);
    // Half the adds are reversed, leaving ~0 deltas for compact to drop.
    if (rng.uniform01() < 0.5) f.add(at(lo), at(hi), -delta);
    windows.emplace_back(lo, hi);
  }
  std::vector<double> values, integrals;
  for (const auto& [lo, hi] : windows) {
    values.push_back(f.value_at(at(lo)));
    integrals.push_back(f.integral(at(lo), at(hi)));
  }
  const double before_max = f.global_max();

  f.compact(1e-9);
  for (std::size_t k = 0; k < windows.size(); ++k) {
    const auto& [lo, hi] = windows[k];
    EXPECT_NEAR(f.value_at(at(lo)), values[k], 1e-6);
    EXPECT_NEAR(f.integral(at(lo), at(hi)), integrals[k], 1e-4);
  }
  EXPECT_NEAR(f.global_max(), before_max, 1e-6);

  // Idempotent: compacting again is a no-op on every observable.
  const auto bp_once = f.breakpoints();
  const double max_once = f.global_max();
  f.compact(1e-9);
  const auto bp_twice = f.breakpoints();
  ASSERT_EQ(bp_once.size(), bp_twice.size());
  for (std::size_t k = 0; k < bp_once.size(); ++k) EXPECT_EQ(bp_once[k], bp_twice[k]);
  EXPECT_EQ(f.global_max(), max_once);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StepFunctionCompactProperty,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace gridbw
