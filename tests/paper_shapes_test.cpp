// Integration tests reproducing the *qualitative shapes* of the paper's
// evaluation at reduced scale (the bench binaries regenerate the full
// figures). Each test pins one claim from §4.4 / §5.3.

#include <gtest/gtest.h>

#include <vector>

#include "baseline/maxmin.hpp"
#include "core/validate.hpp"
#include "heuristics/flexible_greedy.hpp"
#include "heuristics/registry.hpp"
#include "metrics/experiment.hpp"
#include "metrics/objectives.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

using heuristics::BandwidthPolicy;
using heuristics::WindowOptions;

/// Mean accept rate of `scheduler` over a few replications of `scenario`.
double mean_accept_rate(const workload::Scenario& scenario,
                        const heuristics::NamedScheduler& scheduler,
                        std::uint64_t seed_base, std::size_t reps = 4) {
  metrics::ExperimentConfig cfg;
  cfg.replications = reps;
  cfg.base_seed = seed_base;
  cfg.threads = 1;
  const auto stats = metrics::run_replicated(cfg, [&](Rng& rng, std::size_t) {
    const auto requests = workload::generate(scenario.spec, rng);
    const auto result = scheduler.run(scenario.network, requests);
    return metrics::MetricBag{{"accept", result.accept_rate()}};
  });
  return metrics::metric(stats, "accept").mean();
}

TEST(PaperShapes, Fig4_FifoIsWorstForRigidRequestsInOverload) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(2000));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 4.0);

  const auto lineup = heuristics::rigid_schedulers();
  const double fifo = mean_accept_rate(scenario, lineup[0], 1000);
  const double cumulated = mean_accept_rate(scenario, lineup[1], 1000);
  const double minbw = mean_accept_rate(scenario, lineup[2], 1000);

  EXPECT_LT(fifo, cumulated);
  EXPECT_LT(fifo, minbw);
}

TEST(PaperShapes, Fig4_CumulatedAndMinbwAreClose) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(2000));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 4.0);
  const auto lineup = heuristics::rigid_schedulers();
  const double cumulated = mean_accept_rate(scenario, lineup[1], 1001);
  const double minbw = mean_accept_rate(scenario, lineup[2], 1001);
  // "CUMULATED-SLOTS and MINBW-SLOTS have very close performance" (§4.4).
  EXPECT_NEAR(cumulated, minbw, 0.12);
}

TEST(PaperShapes, Fig5_WindowBeatsGreedyInHeavyLoad) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(500), 4.0);
  const auto greedy = heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0));
  WindowOptions opt;
  opt.step = Duration::seconds(200);
  opt.policy = BandwidthPolicy::fraction_of_max(1.0);
  const auto window = heuristics::make_window(opt);

  const double g = mean_accept_rate(scenario, greedy, 2000);
  const double w = mean_accept_rate(scenario, window, 2000);
  EXPECT_GT(w, g);
}

TEST(PaperShapes, Fig5_LargerWindowsAcceptMoreInHeavyLoad) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(500), 4.0);
  double previous = 0.0;
  for (const double step : {50.0, 200.0, 400.0}) {
    WindowOptions opt;
    opt.step = Duration::seconds(step);
    opt.policy = BandwidthPolicy::fraction_of_max(1.0);
    const double rate =
        mean_accept_rate(scenario, heuristics::make_window(opt), 2001, 6);
    EXPECT_GE(rate, previous - 0.03) << "step " << step;  // monotone up to noise
    previous = rate;
  }
}

TEST(PaperShapes, Fig6_SmallerFAcceptsMoreWhenUnderloaded) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(15), Duration::seconds(4000), 4.0);
  const double f_small = mean_accept_rate(
      scenario, heuristics::make_greedy(BandwidthPolicy::fraction_of_max(0.2)), 3000);
  const double f_full = mean_accept_rate(
      scenario, heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0)), 3000);
  EXPECT_GE(f_small, f_full);
}

TEST(PaperShapes, Fig6_MinRatePolicyMaximizesAcceptsWhenUnderloaded) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(15), Duration::seconds(4000), 4.0);
  const double min_bw =
      mean_accept_rate(scenario, heuristics::make_greedy(BandwidthPolicy::min_rate()),
                       3001);
  const double f_full = mean_accept_rate(
      scenario, heuristics::make_greedy(BandwidthPolicy::fraction_of_max(1.0)), 3001);
  EXPECT_GE(min_bw, f_full);
}

TEST(PaperShapes, Tuning_AcceptRateFallsAsFGrowsUnderloaded) {
  const workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(10), Duration::seconds(4000), 4.0);
  std::vector<double> rates;
  for (const double f : {0.2, 0.6, 1.0}) {
    rates.push_back(mean_accept_rate(
        scenario, heuristics::make_greedy(BandwidthPolicy::fraction_of_max(f)), 4000));
  }
  EXPECT_GE(rates[0], rates[2] - 0.02);  // f=0.2 at least as good as f=1
}

TEST(PaperShapes, Baseline_MaxMinWastesWorkInOverload) {
  // In deep overload, uncontrolled max-min sharing lets transfers miss
  // deadlines after moving data (wasted bytes), while admission control
  // wastes nothing by construction.
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(0.5), Duration::seconds(300), 1.5);
  Rng rng{91};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto fluid = baseline::simulate_maxmin(scenario.network, requests);
  EXPECT_GT(fluid.wasted_bytes().to_bytes(), 0.0);
  EXPECT_LT(fluid.success_rate(), 0.9);

  const auto admitted = heuristics::schedule_flexible_greedy(
      scenario.network, requests, BandwidthPolicy::fraction_of_max(1.0));
  // Every admitted transfer completes in time: zero wasted bytes.
  const auto report = validate_schedule(scenario.network, requests, admitted.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PaperShapes, Baseline_MaxMinFineWhenUnderloaded) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(60), Duration::seconds(3000), 4.0);
  Rng rng{92};
  const auto requests = workload::generate(scenario.spec, rng);
  const auto fluid = baseline::simulate_maxmin(scenario.network, requests);
  EXPECT_GT(fluid.success_rate(), 0.85);
}

}  // namespace
}  // namespace gridbw
