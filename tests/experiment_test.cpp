// Tests for the replicated experiment harness: determinism across thread
// counts, metric aggregation, error propagation.

#include <gtest/gtest.h>

#include <atomic>

#include "metrics/experiment.hpp"

namespace gridbw::metrics {
namespace {

TEST(RunReplicated, AggregatesAcrossReplications) {
  ExperimentConfig cfg;
  cfg.replications = 10;
  cfg.threads = 1;
  const auto stats = run_replicated(cfg, [](Rng&, std::size_t rep) {
    return MetricBag{{"value", static_cast<double>(rep)}};
  });
  const auto& value = metric(stats, "value");
  EXPECT_EQ(value.count(), 10u);
  EXPECT_DOUBLE_EQ(value.mean(), 4.5);
  EXPECT_DOUBLE_EQ(value.min(), 0.0);
  EXPECT_DOUBLE_EQ(value.max(), 9.0);
}

TEST(RunReplicated, ParallelEqualsSerialBitForBit) {
  auto body = [](Rng& rng, std::size_t) {
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += rng.uniform01();
    return MetricBag{{"acc", acc}};
  };
  ExperimentConfig serial;
  serial.replications = 16;
  serial.threads = 1;
  ExperimentConfig parallel = serial;
  parallel.threads = 4;
  const auto a = run_replicated(serial, body);
  const auto b = run_replicated(parallel, body);
  EXPECT_DOUBLE_EQ(metric(a, "acc").mean(), metric(b, "acc").mean());
  EXPECT_DOUBLE_EQ(metric(a, "acc").variance(), metric(b, "acc").variance());
}

TEST(RunReplicated, DistinctReplicationsGetDistinctStreams) {
  ExperimentConfig cfg;
  cfg.replications = 8;
  cfg.threads = 1;
  const auto stats = run_replicated(cfg, [](Rng& rng, std::size_t) {
    return MetricBag{{"first", rng.uniform01()}};
  });
  // Eight independent draws cannot all coincide.
  EXPECT_GT(metric(stats, "first").stddev(), 0.0);
}

TEST(RunReplicated, SeedChangesResults) {
  auto body = [](Rng& rng, std::size_t) { return MetricBag{{"x", rng.uniform01()}}; };
  ExperimentConfig a;
  a.replications = 4;
  a.threads = 1;
  ExperimentConfig b = a;
  b.base_seed = a.base_seed + 1;
  EXPECT_NE(metric(run_replicated(a, body), "x").mean(),
            metric(run_replicated(b, body), "x").mean());
}

TEST(RunReplicated, MultipleMetricsPerBag) {
  ExperimentConfig cfg;
  cfg.replications = 3;
  cfg.threads = 1;
  const auto stats = run_replicated(cfg, [](Rng&, std::size_t rep) {
    return MetricBag{{"a", 1.0}, {"b", static_cast<double>(rep * 2)}};
  });
  EXPECT_DOUBLE_EQ(metric(stats, "a").mean(), 1.0);
  EXPECT_DOUBLE_EQ(metric(stats, "b").mean(), 2.0);
}

TEST(RunReplicated, PropagatesBodyExceptions) {
  ExperimentConfig cfg;
  cfg.replications = 4;
  cfg.threads = 2;
  EXPECT_THROW((void)run_replicated(cfg,
                                    [](Rng&, std::size_t rep) -> MetricBag {
                                      if (rep == 2) throw std::runtime_error{"boom"};
                                      return {};
                                    }),
               std::runtime_error);
}

TEST(RunReplicated, RejectsZeroReplications) {
  ExperimentConfig cfg;
  cfg.replications = 0;
  EXPECT_THROW((void)run_replicated(cfg, [](Rng&, std::size_t) { return MetricBag{}; }),
               std::invalid_argument);
}

TEST(RunReplicatedTasks, EveryTaskOfAReplicationSeesTheSameStream) {
  ExperimentConfig cfg;
  cfg.replications = 5;
  cfg.threads = 1;
  const auto out = run_replicated_tasks(cfg, 3, [](Rng& rng, std::size_t rep, std::size_t t) {
    return MetricBag{{"t" + std::to_string(t) + "/r" + std::to_string(rep),
                      rng.uniform01()}};
  });
  for (std::size_t rep = 0; rep < 5; ++rep) {
    const double first =
        metric(out.metrics, "t0/r" + std::to_string(rep)).mean();
    for (std::size_t t = 1; t < 3; ++t) {
      EXPECT_DOUBLE_EQ(
          first, metric(out.metrics, "t" + std::to_string(t) + "/r" + std::to_string(rep)).mean());
    }
  }
}

TEST(RunReplicatedTasks, ParallelEqualsSerialBitForBit) {
  auto body = [](Rng& rng, std::size_t, std::size_t t) {
    double acc = 0.0;
    for (std::size_t i = 0; i <= t * 10; ++i) acc += rng.uniform01();
    return MetricBag{{"acc" + std::to_string(t), acc}};
  };
  ExperimentConfig serial;
  serial.replications = 8;
  serial.threads = 1;
  ExperimentConfig parallel = serial;
  parallel.threads = 4;
  const auto a = run_replicated_tasks(serial, 3, body);
  const auto b = run_replicated_tasks(parallel, 3, body);
  for (std::size_t t = 0; t < 3; ++t) {
    const std::string name = "acc" + std::to_string(t);
    EXPECT_DOUBLE_EQ(metric(a.metrics, name).mean(), metric(b.metrics, name).mean());
    EXPECT_DOUBLE_EQ(metric(a.metrics, name).variance(),
                     metric(b.metrics, name).variance());
  }
}

TEST(RunReplicatedTasks, RecordsWallClockPerTask) {
  ExperimentConfig cfg;
  cfg.replications = 4;
  cfg.threads = 2;
  const auto out = run_replicated_tasks(cfg, 2, [](Rng&, std::size_t, std::size_t) {
    return MetricBag{{"x", 1.0}};
  });
  ASSERT_EQ(out.task_wall_seconds.size(), 2u);
  for (const auto& w : out.task_wall_seconds) {
    EXPECT_EQ(w.count(), 4u);          // one sample per replication
    EXPECT_GE(w.min(), 0.0);
  }
  EXPECT_EQ(metric(out.metrics, "x").count(), 8u);  // reps x tasks
}

TEST(RunReplicatedTasks, RejectsDegenerateGrids) {
  ExperimentConfig cfg;
  cfg.replications = 0;
  auto body = [](Rng&, std::size_t, std::size_t) { return MetricBag{}; };
  EXPECT_THROW((void)run_replicated_tasks(cfg, 2, body), std::invalid_argument);
  cfg.replications = 2;
  EXPECT_THROW((void)run_replicated_tasks(cfg, 0, body), std::invalid_argument);
}

TEST(Metric, ThrowsOnUnknownName) {
  MetricStats stats;
  stats["known"].add(1.0);
  EXPECT_NO_THROW((void)metric(stats, "known"));
  EXPECT_THROW((void)metric(stats, "typo"), std::out_of_range);
}

}  // namespace
}  // namespace gridbw::metrics
