// Determinism wall for the observability layer: with the same seed, the
// JSONL trace is byte-identical across repeat runs, and stays byte-identical
// whether the schedule is validated with the serial or the parallel engine
// (the validator emits counters only — commutative merges — never events).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "heuristics/registry.hpp"
#include "obs/counters.hpp"
#include "obs/observer.hpp"
#include "obs/trace_sink.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

struct TracedRun {
  std::string trace;
  std::array<std::uint64_t, obs::kCounterCount> counters{};
};

/// Runs the whole Fig. 4 lineup over a seeded workload with a JSONL sink
/// attached, validating each schedule with `engine`, and returns the full
/// trace text plus the merged counter snapshot.
TracedRun traced_run(std::uint64_t seed, ValidateEngine engine) {
  workload::Scenario scenario =
      workload::paper_rigid(Duration::seconds(1), Duration::seconds(600));
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 4.0);
  Rng rng{seed};
  const auto requests = workload::generate(scenario.spec, rng);

  std::ostringstream out;
  obs::JsonlSink sink{out};
  obs::CounterRegistry counters;
  obs::Observer observer{&sink, &counters};

  for (const auto& h : heuristics::rigid_schedulers()) {
    sink.annotate("scheduler", h.name);
    const auto result = h.run(scenario.network, requests, &observer);
    ValidateOptions options;
    options.engine = engine;
    options.threads = 4;
    options.observer = &observer;
    const auto report = validate_assignments(scenario.network, requests,
                                             result.schedule.assignments(), options);
    EXPECT_TRUE(report.ok());
  }
  sink.flush();
  return TracedRun{out.str(), counters.snapshot()};
}

TEST(TraceDeterminism, RepeatRunsAreByteIdentical) {
  const TracedRun a = traced_run(42, ValidateEngine::kSerial);
  const TracedRun b = traced_run(42, ValidateEngine::kSerial);
  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(TraceDeterminism, SerialAndParallelValidationAgreeByteForByte) {
  const TracedRun serial = traced_run(42, ValidateEngine::kSerial);
  const TracedRun parallel = traced_run(42, ValidateEngine::kParallel);
  EXPECT_EQ(serial.trace, parallel.trace);
  // Counter totals merge deterministically regardless of thread schedule.
  EXPECT_EQ(serial.counters, parallel.counters);
}

TEST(TraceDeterminism, DifferentSeedsProduceDifferentTraces) {
  const TracedRun a = traced_run(42, ValidateEngine::kSerial);
  const TracedRun b = traced_run(43, ValidateEngine::kSerial);
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace gridbw
