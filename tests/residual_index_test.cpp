// Differential + adversarial suite for the residual-capacity index
// (core/residual_index.hpp, DESIGN.md §5g):
//
//  * an unpatched (exact) index must return TimelineProfile::max_over's
//    answer bit-for-bit, on random and adversarial breakpoint-dense
//    profiles and on every window shape (spanning, sliver, disjoint);
//  * a patched index bounds its FP drift by error_bound(), and apply() at
//    an unknown breakpoint makes the index stale instead of lying;
//  * NetworkLedger::fits — the adopter — must make the bit-identical
//    admission decision to the pure per-port profile scans on fig4-scale
//    probe/reserve/release workloads (several seeds), across index builds,
//    patches, and guard-band fallbacks; headroom must stay exact too.

#include "core/residual_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ledger.hpp"
#include "core/timeline_profile.hpp"
#include "util/random.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }

TEST(ResidualIndexTest, StartsStaleAndRebuildMakesItExact) {
  TimelineProfile profile;
  profile.add(at(0), at(10), 3.0);
  ResidualIndex index;
  EXPECT_FALSE(index.fresh());
  EXPECT_FALSE(index.exact());
  index.rebuild(profile);
  EXPECT_TRUE(index.fresh());
  EXPECT_TRUE(index.exact());
  EXPECT_EQ(index.patch_count(), 0u);
  EXPECT_DOUBLE_EQ(index.error_bound(), 0.0);
}

TEST(ResidualIndexTest, ExactIndexMatchesMaxOverBitForBitOnRandomProfiles) {
  for (const std::uint64_t seed : {11u, 4242u, 987654321u}) {
    Rng rng{seed};
    TimelineProfile profile;
    for (int k = 0; k < 400; ++k) {
      const double t0 = rng.uniform(0.0, 1000.0);
      const double len = rng.uniform(0.001, 80.0);
      profile.add(at(t0), at(t0 + len), rng.uniform(-2.0, 5.0));
    }
    ResidualIndex index;
    index.rebuild(profile);
    ASSERT_TRUE(index.exact());
    for (int q = 0; q < 2000; ++q) {
      const double lo = rng.uniform(-50.0, 1100.0);
      const double hi = lo + rng.uniform(0.0, 300.0);
      const double got = index.peak_over(at(lo), at(hi));
      const double want = profile.max_over(at(lo), at(hi));
      // Bit-identity, not EXPECT_NEAR: NetworkLedger's decisions depend on
      // the exact double.
      ASSERT_EQ(got, want) << "seed=" << seed << " window=[" << lo << "," << hi << ")";
    }
  }
}

TEST(ResidualIndexTest, BreakpointDenseProfileAndSliverWindows) {
  // Thousands of abutting one-second segments: every query window boundary
  // falls near breakpoints, the worst case for off-by-one index math.
  TimelineProfile profile;
  for (int k = 0; k < 5000; ++k) {
    profile.add(at(k), at(k + 1), static_cast<double>((k * 37) % 101));
  }
  ResidualIndex index;
  index.rebuild(profile);
  ASSERT_TRUE(index.exact());
  ASSERT_GE(index.breakpoint_count(), 5000u);
  for (int k = 0; k < 5000; k += 7) {
    const double t = static_cast<double>(k);
    // Exactly one segment, a boundary-straddling pair, and a zero-width
    // sliver (empty window: both must answer 0).
    ASSERT_EQ(index.peak_over(at(t), at(t + 1)), profile.max_over(at(t), at(t + 1)));
    ASSERT_EQ(index.peak_over(at(t + 0.5), at(t + 1.5)),
              profile.max_over(at(t + 0.5), at(t + 1.5)));
    ASSERT_EQ(index.peak_over(at(t), at(t)), profile.max_over(at(t), at(t)));
  }
  // Fully outside the profile on both sides.
  EXPECT_EQ(index.peak_over(at(-100), at(-50)), profile.max_over(at(-100), at(-50)));
  EXPECT_EQ(index.peak_over(at(9000), at(9100)), profile.max_over(at(9000), at(9100)));
}

TEST(ResidualIndexTest, PatchedIndexStaysWithinErrorBound) {
  Rng rng{77};
  TimelineProfile profile;
  for (int k = 0; k < 200; ++k) {
    const double t0 = static_cast<double>(k);
    profile.add(at(t0), at(t0 + 3.0), rng.uniform(0.0, 10.0));
  }
  ResidualIndex index;
  index.rebuild(profile);

  // Patch both books identically at existing breakpoints.
  for (int k = 0; k < 50; ++k) {
    const double t0 = static_cast<double>((k * 3) % 200);
    const double delta = rng.uniform(-1.0, 2.0);
    profile.add(at(t0), at(t0 + 3.0), delta);
    ASSERT_TRUE(index.apply(at(t0), at(t0 + 3.0), delta)) << "k=" << k;
  }
  EXPECT_TRUE(index.fresh());
  EXPECT_FALSE(index.exact());
  EXPECT_EQ(index.patch_count(), 50u);
  const double bound = index.error_bound();
  EXPECT_GT(bound, 0.0);
  for (int q = 0; q < 500; ++q) {
    const double lo = rng.uniform(-10.0, 210.0);
    const double hi = lo + rng.uniform(0.0, 60.0);
    const double got = index.peak_over(at(lo), at(hi));
    const double want = profile.max_over(at(lo), at(hi));
    ASSERT_NEAR(got, want, bound) << "window=[" << lo << "," << hi << ")";
  }
}

TEST(ResidualIndexTest, ApplyAtUnknownBreakpointGoesStale) {
  TimelineProfile profile;
  profile.add(at(0), at(10), 1.0);
  profile.add(at(10), at(20), 2.0);
  ResidualIndex index;
  index.rebuild(profile);
  ASSERT_TRUE(index.fresh());

  // 5.0 is not a snapshot breakpoint: the patch must be refused and the
  // index marked stale — a wrong "fresh" answer would corrupt admissions.
  EXPECT_FALSE(index.apply(at(0), at(5), 1.0));
  EXPECT_FALSE(index.fresh());
  EXPECT_FALSE(index.exact());

  index.rebuild(profile);
  EXPECT_TRUE(index.fresh());
  // Existing endpoints patch fine again.
  EXPECT_TRUE(index.apply(at(0), at(10), 1.0));
  EXPECT_TRUE(index.fresh());

  index.invalidate();
  EXPECT_FALSE(index.fresh());
}

TEST(ResidualIndexTest, ZeroWidthAndZeroDeltaPatchesAreNoOps) {
  TimelineProfile profile;
  profile.add(at(0), at(10), 1.0);
  ResidualIndex index;
  index.rebuild(profile);
  EXPECT_TRUE(index.apply(at(3), at(3), 5.0));   // empty window
  EXPECT_TRUE(index.apply(at(0), at(10), 0.0));  // zero delta
  EXPECT_EQ(index.patch_count(), 0u);
  EXPECT_TRUE(index.exact());
}

// ---------------------------------------------------------------------------
// NetworkLedger adoption: fits/headroom must be bit-identical to the pure
// per-port profile scans while the index builds, patches, and falls back.
// ---------------------------------------------------------------------------

/// Drives an FCFS-style admit/release sequence over `requests` and checks,
/// for every probe, that `fits` (index-accelerated) agrees with the pure
/// `fits_ingress`/`fits_egress` scans evaluated on the same profiles — and
/// that `headroom` agrees with the scan-computed headroom.
void check_ledger_bit_identity(const Network& network,
                               std::span<const Request> requests) {
  NetworkLedger ledger{network};
  std::size_t admitted = 0;
  std::size_t index_disagreements = 0;
  for (const Request& r : requests) {
    if (!(r.deadline > r.release)) continue;
    const Bandwidth bw = r.min_rate();
    // Order matters: the pure scans never mutate probe state, so computing
    // them first cannot perturb what `fits` sees.
    const bool want = ledger.fits_ingress(r.ingress, r.release, r.deadline, bw) &&
                      ledger.fits_egress(r.egress, r.release, r.deadline, bw);
    const bool got = ledger.fits(r.ingress, r.egress, r.release, r.deadline, bw);
    if (got != want) ++index_disagreements;
    if (got) {
      ledger.reserve(r.ingress, r.egress, r.release, r.deadline, bw);
      ++admitted;
      // Exercise release (negative index patches) on a third of admissions.
      if (admitted % 3 == 0) {
        ledger.release(r.ingress, r.egress, r.release, r.deadline, bw);
      }
    }
    if (admitted % 16 == 0) {
      const double in_peak =
          ledger.ingress_profile(r.ingress).max_over(r.release, r.deadline);
      const double out_peak =
          ledger.egress_profile(r.egress).max_over(r.release, r.deadline);
      const double want_room = std::max(
          0.0,
          std::min(network.ingress_capacity(r.ingress).to_bytes_per_second() - in_peak,
                   network.egress_capacity(r.egress).to_bytes_per_second() - out_peak));
      ASSERT_EQ(ledger.headroom(r.ingress, r.egress, r.release, r.deadline)
                    .to_bytes_per_second(),
                want_room)
          << r.describe();
    }
  }
  EXPECT_EQ(index_disagreements, 0u);
  EXPECT_GT(admitted, 0u);
}

TEST(ResidualIndexLedgerTest, FitsMatchesPureScansOnFig4Workloads) {
  for (const std::uint64_t seed : {11u, 4242u, 987654321u}) {
    workload::Scenario scenario =
        workload::paper_rigid(Duration::seconds(1), Duration::seconds(1));
    scenario.spec.mean_interarrival =
        workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
    scenario.spec.horizon = scenario.spec.mean_interarrival * 10000.0;
    Rng rng{seed};
    auto requests = workload::generate(scenario.spec, rng);
    requests.resize(std::min<std::size_t>(requests.size(), 10000));
    ASSERT_GT(requests.size(), 1000u) << "seed=" << seed;
    check_ledger_bit_identity(scenario.network, requests);
  }
}

TEST(ResidualIndexLedgerTest, EffectivelyZeroCapacityPortsNeverAdmit) {
  // Network requires positive capacities, so "zero-capacity port" means a
  // capacity below the admission tolerance (1 byte/s): nothing above the
  // tolerance can ever fit, however the probe is answered.
  const Network net = Network::uniform(2, 2, Bandwidth::bytes_per_second(1e-3));
  NetworkLedger ledger{net};
  // Dense sub-capacity reservations push the port profile past the index
  // build floor; repeated probes then amortize the index in (each fallback
  // scan charges debt) — decisions must not change when it engages.
  for (int k = 0; k < 200; ++k) {
    ledger.reserve(IngressId{0}, EgressId{0}, at(k), at(k + 1),
                   Bandwidth::bytes_per_second(1e-6));
  }
  for (int k = 0; k < 500; ++k) {
    EXPECT_FALSE(ledger.fits(IngressId{0}, EgressId{0}, at(k % 100), at(k % 100 + 5),
                             Bandwidth::bytes_per_second(2.0)));
    EXPECT_TRUE(ledger.fits(IngressId{0}, EgressId{0}, at(k % 100), at(k % 100 + 5),
                            Bandwidth::zero()));
  }
  EXPECT_LE(ledger.headroom(IngressId{0}, EgressId{0}, at(0), at(50))
                .to_bytes_per_second(),
            1e-3);
}

TEST(ResidualIndexLedgerTest, SliverWindowsReleaseEqualsDeadline) {
  const Network net = Network::uniform(2, 2, Bandwidth::megabytes_per_second(100));
  NetworkLedger ledger{net};
  for (int k = 0; k < 300; ++k) {
    ledger.reserve(IngressId{0}, EgressId{0}, at(k), at(k + 2),
                   Bandwidth::megabytes_per_second(1));
  }
  for (int k = 0; k < 300; ++k) {
    const TimePoint t = at(k + 0.5);
    // Zero-width [t, t) windows (release == deadline slivers): the profile
    // scan answers them with the standing load AT t, and the index must
    // agree bit-for-bit — both for a rate that fits next to that load and
    // for one that exceeds the port outright.
    for (const double mb : {50.0, 500.0}) {
      const Bandwidth bw = Bandwidth::megabytes_per_second(mb);
      const bool want = ledger.fits_ingress(IngressId{0}, t, t, bw) &&
                        ledger.fits_egress(EgressId{0}, t, t, bw);
      EXPECT_EQ(ledger.fits(IngressId{0}, EgressId{0}, t, t, bw), want)
          << "t=" << t.to_seconds() << " bw=" << mb;
      EXPECT_EQ(want, mb <= 99.0);  // 1 MB/s standing load on a 100 MB/s port
    }
  }
}

}  // namespace
}  // namespace gridbw
