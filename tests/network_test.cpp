// Unit tests for the platform (Network) model.

#include "core/network.hpp"

#include <gtest/gtest.h>

namespace gridbw {
namespace {

TEST(Network, UniformBuilder) {
  const Network n = Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));
  EXPECT_EQ(n.ingress_count(), 10u);
  EXPECT_EQ(n.egress_count(), 10u);
  EXPECT_EQ(n.ingress_capacity(IngressId{3}), Bandwidth::gigabytes_per_second(1));
  EXPECT_EQ(n.egress_capacity(EgressId{9}), Bandwidth::gigabytes_per_second(1));
}

TEST(Network, HeterogeneousCapacities) {
  const Network n{{Bandwidth::megabytes_per_second(100), Bandwidth::gigabytes_per_second(1)},
                  {Bandwidth::megabytes_per_second(500)}};
  EXPECT_EQ(n.ingress_count(), 2u);
  EXPECT_EQ(n.egress_count(), 1u);
  EXPECT_EQ(n.ingress_capacity(IngressId{0}), Bandwidth::megabytes_per_second(100));
}

TEST(Network, TotalCapacitySumsBothSides) {
  const Network n = Network::uniform(3, 2, Bandwidth::gigabytes_per_second(1));
  EXPECT_DOUBLE_EQ(n.total_capacity().to_gigabytes_per_second(), 5.0);
}

TEST(Network, BottleneckIsMinOfPair) {
  const Network n{{Bandwidth::megabytes_per_second(100)},
                  {Bandwidth::megabytes_per_second(40)}};
  EXPECT_EQ(n.bottleneck(IngressId{0}, EgressId{0}),
            Bandwidth::megabytes_per_second(40));
}

TEST(Network, RejectsEmptySides) {
  EXPECT_THROW((Network{{}, {Bandwidth::gigabytes_per_second(1)}}),
               std::invalid_argument);
  EXPECT_THROW((Network{{Bandwidth::gigabytes_per_second(1)}, {}}),
               std::invalid_argument);
}

TEST(Network, RejectsNonPositiveCapacity) {
  EXPECT_THROW((Network{{Bandwidth::zero()}, {Bandwidth::gigabytes_per_second(1)}}),
               std::invalid_argument);
  EXPECT_THROW(
      (Network{{Bandwidth::gigabytes_per_second(1)}, {Bandwidth::infinity()}}),
      std::invalid_argument);
}

TEST(Network, OutOfRangePortThrows) {
  const Network n = Network::uniform(2, 2, Bandwidth::gigabytes_per_second(1));
  EXPECT_THROW((void)n.ingress_capacity(IngressId{2}), std::out_of_range);
  EXPECT_THROW((void)n.egress_capacity(EgressId{5}), std::out_of_range);
}

TEST(Network, CapacitySpansExposeAllPorts) {
  const Network n = Network::uniform(4, 6, Bandwidth::gigabytes_per_second(2));
  EXPECT_EQ(n.ingress_capacities().size(), 4u);
  EXPECT_EQ(n.egress_capacities().size(), 6u);
}

}  // namespace
}  // namespace gridbw
