// Concurrency stress tests, written to run under ThreadSanitizer
// (GRIDBW_SANITIZE=thread / scripts/check.sh --tsan) as the race-detection
// wall for the parallel surfaces. They also run in every plain build as
// functional tests; only under TSan do they additionally prove the absence
// of data races.
//
// The shared-profile tests are the regression for the lazy-merge hazard:
// TimelineProfile queries mutate `mutable` caches on the first query after
// a batch of adds, so sharing an *unmerged* profile across threads is a
// data race. The validator's parallel engine materializes every port
// profile in a dedicated pre-pass (validate.cpp) before its query sweep;
// these tests pin both that path and the direct shared-query contract.
// Dropping `ensure_merged()` below (or the validator's pre-pass) makes TSan
// halt with a report.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/residual_index.hpp"
#include "core/timeline_profile.hpp"
#include "core/validate.hpp"
#include "obs/counters.hpp"
#include "service/admission_service.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"
#include "workload/load.hpp"
#include "workload/scenario.hpp"

namespace gridbw {
namespace {

constexpr std::uint64_t kSeeds[] = {7, 1234, 99999};

struct BigWorkload {
  workload::Scenario scenario;
  std::vector<Request> requests;
};

BigWorkload big_workload(std::uint64_t seed, std::size_t count) {
  workload::Scenario scenario =
      workload::paper_flexible(Duration::seconds(1), Duration::seconds(1), 4.0);
  scenario.spec.mean_interarrival =
      workload::interarrival_for_load(scenario.spec, scenario.network, 3.0);
  scenario.spec.horizon =
      scenario.spec.mean_interarrival * static_cast<double>(count);
  Rng rng{seed};
  auto requests = workload::generate(scenario.spec, rng);
  if (requests.size() > count) requests.resize(count);
  return BigWorkload{std::move(scenario), std::move(requests)};
}

TEST(TsanStress, ParallelValidation10kRequestsAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    const auto [scenario, requests] = big_workload(seed, 10000);
    ASSERT_GT(requests.size(), 5000u);

    // Accept-all at MinRate overloads the ports, so the parallel sweep has
    // real capacity violations to find and merge deterministically.
    std::vector<Assignment> assignments;
    assignments.reserve(requests.size());
    for (const Request& r : requests) {
      assignments.push_back(Assignment{r.id, r.release, r.min_rate()});
    }

    ValidateOptions parallel_opts;
    parallel_opts.engine = ValidateEngine::kParallel;
    parallel_opts.threads = 8;
    const auto parallel =
        validate_assignments(scenario.network, requests, assignments, parallel_opts);

    ValidateOptions serial_opts;
    serial_opts.engine = ValidateEngine::kSerial;
    const auto serial =
        validate_assignments(scenario.network, requests, assignments, serial_opts);

    EXPECT_FALSE(parallel.ok()) << "seed=" << seed;
    ASSERT_EQ(parallel.violations.size(), serial.violations.size()) << "seed=" << seed;
    for (std::size_t k = 0; k < parallel.violations.size(); ++k) {
      EXPECT_EQ(parallel.violations[k].detail, serial.violations[k].detail)
          << "seed=" << seed << " #" << k;
    }
  }
}

TEST(TsanStress, SharedMergedProfileSurvivesConcurrentQueries) {
  TimelineProfile profile;
  for (int k = 0; k < 5000; ++k) {
    const double t0 = static_cast<double>((k * 37) % 1000);
    profile.add(TimePoint::at_seconds(t0),
                TimePoint::at_seconds(t0 + 5.0 + static_cast<double>(k % 7)), 1.0);
  }
  // THE FIX UNDER TEST: materialize the lazy caches before sharing. Remove
  // this line and the first concurrent queries below race on the merge.
  profile.ensure_merged();
  ASSERT_TRUE(profile.merged());

  const double expected_peak = profile.global_max();
  const double expected_integral =
      profile.integral(TimePoint::origin(), TimePoint::at_seconds(1100.0));

  ThreadPool pool{8};
  std::atomic<int> mismatches{0};
  parallel_for_index(pool, 64, [&](std::size_t i) {
    const auto t = TimePoint::at_seconds(static_cast<double>(i % 1000));
    if (profile.value_at(t) < 0.0) ++mismatches;
    if (profile.global_max() != expected_peak) ++mismatches;
    if (profile.max_over(t, t + Duration::seconds(50)) > expected_peak) ++mismatches;
    if (profile.integral(TimePoint::origin(), TimePoint::at_seconds(1100.0)) !=
        expected_integral) {
      ++mismatches;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(profile.merged()) << "concurrent queries must not unmerge";
}

TEST(TsanStress, SharedResidualIndexSurvivesConcurrentReadOnlyQueries) {
  // The residual index's documented sharing contract (DESIGN.md §5g): once
  // built, peak_over is a pure read — no lazy push-down, no cache writes —
  // so a *read-only* index may be queried from many threads. rebuild/apply
  // are writes and stay single-threaded (NetworkLedger owns its indexes per
  // engine); this pins the read side under TSan.
  TimelineProfile profile;
  for (int k = 0; k < 5000; ++k) {
    const double t0 = static_cast<double>((k * 37) % 1000);
    profile.add(TimePoint::at_seconds(t0),
                TimePoint::at_seconds(t0 + 5.0 + static_cast<double>(k % 7)), 1.0);
  }
  profile.ensure_merged();
  ResidualIndex index;
  index.rebuild(profile);
  ASSERT_TRUE(index.exact());

  // Expected answers computed serially, before sharing.
  std::vector<double> expected;
  expected.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto lo = TimePoint::at_seconds(static_cast<double>(i * 17 % 1000));
    expected.push_back(index.peak_over(lo, lo + Duration::seconds(50)));
  }

  ThreadPool pool{8};
  std::atomic<int> mismatches{0};
  parallel_for_index(pool, 256, [&](std::size_t i) {
    const std::size_t q = i % 64;
    const auto lo = TimePoint::at_seconds(static_cast<double>(q * 17 % 1000));
    if (index.peak_over(lo, lo + Duration::seconds(50)) != expected[q]) ++mismatches;
    if (index.peak_over(lo, lo) != 0.0) ++mismatches;  // empty window
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(index.exact()) << "concurrent reads must not perturb the index";
}

TEST(TsanStress, ParallelForIndexExceptionPropagationUnderLoad) {
  ThreadPool pool{8};
  for (int round = 0; round < 20; ++round) {
    try {
      parallel_for_index(pool, 256, [&](std::size_t i) {
        if (i % 50 == 3) {  // fails at 3, 53, 103, ... — 3 must win
          throw std::runtime_error{std::to_string(i)};
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "round " << round;
    }
  }
}

TEST(TsanStress, CounterRegistryHammeredFromPoolMergesExactly) {
  // The observability counters take relaxed atomic adds on per-thread
  // shards; the merge must be exact once writers quiesce, independent of
  // how the pool interleaved them. Under TSan this also proves the
  // shard-growth lock and the thread-local shard cache are race-free.
  obs::CounterRegistry registry;
  ThreadPool pool{8};
  constexpr std::size_t kTasks = 512;
  constexpr std::uint64_t kPerTask = 1000;
  parallel_for_index(pool, kTasks, [&](std::size_t) {
    for (std::uint64_t k = 0; k < kPerTask; ++k) {
      registry.add(obs::Counter::kSubmitted);
      if (k % 3 == 0) registry.add(obs::Counter::kAccepted, 2);
    }
    // Concurrent reads must see a consistent lower bound, never garbage.
    if (registry.value(obs::Counter::kSubmitted) > kTasks * kPerTask) {
      ADD_FAILURE() << "merged value overshot the writers";
    }
  });
  EXPECT_EQ(registry.value(obs::Counter::kSubmitted), kTasks * kPerTask);
  EXPECT_EQ(registry.value(obs::Counter::kAccepted),
            2 * kTasks * ((kPerTask + 2) / 3));
  registry.reset();
  EXPECT_EQ(registry.value(obs::Counter::kSubmitted), 0u);
}

TEST(TsanStress, TwoRegistriesHammeredConcurrentlyStayIsolated) {
  obs::CounterRegistry a;
  obs::CounterRegistry b;
  ThreadPool pool{8};
  parallel_for_index(pool, 256, [&](std::size_t i) {
    obs::CounterRegistry& target = (i % 2 == 0) ? a : b;
    for (int k = 0; k < 500; ++k) target.add(obs::Counter::kRejected);
  });
  EXPECT_EQ(a.value(obs::Counter::kRejected), 128u * 500u);
  EXPECT_EQ(b.value(obs::Counter::kRejected), 128u * 500u);
}

TEST(TsanStress, SubmitRacingShutdownNeverDropsOrDeadlocks) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    std::atomic<int> rejected{0};
    auto pool = std::make_unique<ThreadPool>(4);
    ThreadPool submitters{4};
    std::vector<std::future<void>> feeds;
    for (int s = 0; s < 4; ++s) {
      feeds.push_back(submitters.submit([&] {
        for (int k = 0; k < 200; ++k) {
          try {
            (void)pool->submit([&ran] { ++ran; });
          } catch (const std::runtime_error&) {
            ++rejected;
          }
        }
      }));
    }
    pool->shutdown();  // races against the feeders
    for (auto& f : feeds) f.get();
    pool.reset();
    // Every submit either executed (shutdown drains the queue) or threw.
    EXPECT_EQ(ran.load() + rejected.load(), 800) << "round " << round;
  }
}

// The sharded churn service is the newest parallel surface (DESIGN.md §5h):
// worker threads execute per-port sequence-gated events under two-shard
// lock ordering while the GC folds retired breakpoints under the same
// locks. This hammer drives concurrent ingest (4 submitter threads) into an
// 8-shard drain with an aggressive GC cadence, across seeds, and checks the
// decisions still match the serial 1-shard GC-off replay bit for bit. Under
// TSan this additionally proves the ingest queue, the shard condvars, and
// the GC mutations race-free.
TEST(TsanStress, ShardedAdmissionServiceMatchesSerialReplayUnderHammer) {
  for (const std::uint64_t seed : kSeeds) {
    const auto [scenario, requests] = big_workload(seed, 4000);
    ASSERT_GT(requests.size(), 1000u);

    service::ServiceOptions serial_opts;
    serial_opts.shards = 1;
    serial_opts.gc = false;
    service::AdmissionService serial{scenario.network, std::move(serial_opts)};
    for (const Request& r : requests) serial.submit(r);
    const service::ServiceReport expected = serial.drain();

    service::ServiceOptions sharded_opts;
    sharded_opts.shards = 8;
    sharded_opts.gc = true;
    sharded_opts.gc_batch = 8;  // aggressive: many folds under contention
    service::AdmissionService sharded{scenario.network, std::move(sharded_opts)};
    {
      ThreadPool submitters{4};
      std::vector<std::future<void>> feeds;
      for (int t = 0; t < 4; ++t) {
        feeds.push_back(submitters.submit([&, t] {
          for (std::size_t k = static_cast<std::size_t>(t); k < requests.size(); k += 4) {
            sharded.submit(requests[k]);
          }
        }));
      }
      for (auto& f : feeds) f.get();
    }
    const service::ServiceReport actual = sharded.drain();

    EXPECT_EQ(actual.decision_fingerprint, expected.decision_fingerprint)
        << "seed " << seed;
    EXPECT_EQ(actual.admitted, expected.admitted);
    EXPECT_EQ(actual.expired, expected.expired);
    EXPECT_LE(actual.resident_breakpoints, expected.resident_breakpoints);
  }
}

}  // namespace
}  // namespace gridbw
