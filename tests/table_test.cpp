// Unit tests for table / CSV emission.

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gridbw {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t{{"name", "v"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
  EXPECT_NE(s.find("+--------+----+"), std::string::npos);
}

TEST(Table, NumericRowsUsePrecision) {
  Table t{{"x", "y"}};
  t.add_row_numeric(std::vector<double>{1.23456, 2.0}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, CsvOutput) {
  Table t{{"a", "b"}};
  t.add_row({"1", "x,y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,\"x,y\"\n");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "gridbw_csv_test.csv";
  {
    CsvWriter w{path, {"load", "accept"}};
    w.add_row(std::vector<std::string>{"0.5", "0.9"});
    w.add_row_numeric(std::vector<double>{1.0, 0.5}, 2);
    w.close();
  }
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "load,accept\n0.5,0.9\n1.00,0.50\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsMismatchedRow) {
  const std::string path = ::testing::TempDir() + "gridbw_csv_test2.csv";
  CsvWriter w{path, {"a", "b"}};
  EXPECT_THROW(w.add_row(std::vector<std::string>{"only-one"}), std::invalid_argument);
  w.close();
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsUnopenablePath) {
  EXPECT_THROW((CsvWriter{"/nonexistent-dir/x.csv", {"a"}}), std::runtime_error);
}

}  // namespace
}  // namespace gridbw
