// Tests for the exact branch-and-bound solvers, plus heuristic-vs-optimal
// dominance properties on random small instances.

#include <gtest/gtest.h>

#include <vector>

#include "core/validate.hpp"
#include "exact/bnb.hpp"
#include "heuristics/registry.hpp"
#include "workload/generator.hpp"

namespace gridbw::exact {
namespace {

TimePoint at(double s) { return TimePoint::at_seconds(s); }
Bandwidth mbps(double m) { return Bandwidth::megabytes_per_second(m); }

Request rigid(RequestId id, double ts, double len, double rate_mbps, std::size_t in = 0,
              std::size_t out = 0) {
  return RequestBuilder{id}
      .from(IngressId{in})
      .to(EgressId{out})
      .rigid(at(ts), Duration::seconds(len), mbps(rate_mbps))
      .build();
}

TEST(RigidOptimal, EmptyInstance) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const auto out = solve_rigid_optimal(net, std::vector<Request>{});
  EXPECT_TRUE(out.proven_optimal);
  EXPECT_EQ(out.result.accepted_count(), 0u);
}

TEST(RigidOptimal, AcceptsAllWhenFeasible) {
  const Network net = Network::uniform(1, 1, mbps(100));
  const std::vector<Request> rs{rigid(1, 0, 10, 50), rigid(2, 0, 10, 50),
                                rigid(3, 10, 10, 100)};
  const auto out = solve_rigid_optimal(net, rs);
  EXPECT_TRUE(out.proven_optimal);
  EXPECT_EQ(out.result.accepted_count(), 3u);
}

TEST(RigidOptimal, PicksTheBetterSubset) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // One 100 MB/s hog vs two 50 MB/s requests over the same window: the
  // optimum takes the pair.
  const std::vector<Request> rs{rigid(1, 0, 10, 100), rigid(2, 0, 10, 50),
                                rigid(3, 0, 10, 50)};
  const auto out = solve_rigid_optimal(net, rs);
  EXPECT_TRUE(out.proven_optimal);
  EXPECT_EQ(out.result.accepted_count(), 2u);
  EXPECT_FALSE(out.result.schedule.is_accepted(1));
}

TEST(RigidOptimal, ProducesValidSchedules) {
  const Network net = Network::uniform(2, 2, mbps(100));
  std::vector<Request> rs;
  Rng rng{41};
  for (RequestId id = 1; id <= 12; ++id) {
    rs.push_back(rigid(id, rng.uniform(0, 50), rng.uniform(5, 30),
                       rng.uniform(20, 90),
                       static_cast<std::size_t>(rng.uniform_int(0, 1)),
                       static_cast<std::size_t>(rng.uniform_int(0, 1))));
  }
  const auto out = solve_rigid_optimal(net, rs);
  EXPECT_TRUE(out.proven_optimal);
  const auto report = validate_schedule(net, rs, out.result.schedule);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RigidOptimal, NodeBudgetTerminatesSearch) {
  const Network net = Network::uniform(2, 2, mbps(100));
  std::vector<Request> rs;
  Rng rng{42};
  for (RequestId id = 1; id <= 18; ++id) {
    rs.push_back(rigid(id, rng.uniform(0, 20), rng.uniform(5, 30), rng.uniform(20, 60),
                       static_cast<std::size_t>(rng.uniform_int(0, 1)),
                       static_cast<std::size_t>(rng.uniform_int(0, 1))));
  }
  ExactOptions opt;
  opt.max_nodes = 50;
  const auto out = solve_rigid_optimal(net, rs, opt);
  EXPECT_FALSE(out.proven_optimal);
  EXPECT_LE(out.nodes_expanded, 51u);
  // Even truncated, the incumbent must be a valid schedule.
  EXPECT_TRUE(validate_schedule(net, rs, out.result.schedule).ok());
}

TEST(FlexibleOptimal, UsesLaterStartWhenItHelps) {
  const Network net = Network::uniform(1, 1, mbps(100));
  // r1 is rigid on [0, 10]. r2 (duration 10 at MaxRate) has window [0, 20]:
  // only a delayed start at t=10 fits both.
  std::vector<Request> rs{rigid(1, 0, 10, 100)};
  rs.push_back(RequestBuilder{2}
                   .from(IngressId{0})
                   .to(EgressId{0})
                   .window(at(0), at(20))
                   .volume(mbps(100) * Duration::seconds(10))
                   .max_rate(mbps(100))
                   .build());
  const auto out = solve_flexible_optimal(net, rs, Duration::seconds(5));
  EXPECT_TRUE(out.proven_optimal);
  EXPECT_EQ(out.result.accepted_count(), 2u);
  const auto a2 = out.result.schedule.assignment(2);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->start, at(10));
}

TEST(FlexibleOptimal, DominatesRigidOptimal) {
  // The flexible relaxation (start times may shift) can only accept more.
  const Network net = Network::uniform(2, 2, mbps(100));
  Rng rng{43};
  std::vector<Request> rs;
  for (RequestId id = 1; id <= 10; ++id) {
    const double fastest = rng.uniform(5, 20);
    const Bandwidth rate = mbps(rng.uniform(30, 100));
    const double ts = rng.uniform(0, 30);
    rs.push_back(RequestBuilder{id}
                     .from(IngressId{static_cast<std::size_t>(rng.uniform_int(0, 1))})
                     .to(EgressId{static_cast<std::size_t>(rng.uniform_int(0, 1))})
                     .window(at(ts), at(ts + 2.0 * fastest))
                     .volume(rate * Duration::seconds(fastest))
                     .max_rate(rate)
                     .build());
  }
  const auto flexible = solve_flexible_optimal(net, rs, Duration::seconds(5));
  ASSERT_TRUE(flexible.proven_optimal);
  EXPECT_TRUE(validate_schedule(net, rs, flexible.result.schedule).ok());

  // Rigid variant of the same set: force MinRate == MaxRate over the window.
  std::vector<Request> rigid_rs;
  for (const Request& r : rs) {
    Request c = r;
    c.max_rate = c.min_rate();
    rigid_rs.push_back(c);
  }
  const auto rigid_opt = solve_rigid_optimal(net, rigid_rs);
  ASSERT_TRUE(rigid_opt.proven_optimal);
  EXPECT_GE(flexible.result.accepted_count(), rigid_opt.result.accepted_count());
}

TEST(FlexibleOptimal, RejectsNonPositiveStep) {
  const Network net = Network::uniform(1, 1, mbps(100));
  EXPECT_THROW(
      (void)solve_flexible_optimal(net, std::vector<Request>{}, Duration::zero()),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Dominance property: no heuristic beats the proven optimum, on random
// small rigid instances.
// ---------------------------------------------------------------------------

class HeuristicsNeverBeatOptimal : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicsNeverBeatOptimal, OnRandomSmallInstances) {
  Rng rng{GetParam()};
  const Network net = Network::uniform(3, 3, mbps(100));
  std::vector<Request> rs;
  const auto count = static_cast<RequestId>(rng.uniform_int(6, 14));
  for (RequestId id = 1; id <= count; ++id) {
    rs.push_back(rigid(id, rng.uniform(0, 40), rng.uniform(5, 25), rng.uniform(20, 100),
                       static_cast<std::size_t>(rng.uniform_int(0, 2)),
                       static_cast<std::size_t>(rng.uniform_int(0, 2))));
  }
  const auto optimal = solve_rigid_optimal(net, rs);
  ASSERT_TRUE(optimal.proven_optimal);
  for (const auto& h : heuristics::rigid_schedulers()) {
    const auto result = h.run(net, rs);
    EXPECT_LE(result.accepted_count(), optimal.result.accepted_count())
        << h.name << " 'beat' the optimum: its schedule must be infeasible";
    EXPECT_TRUE(validate_schedule(net, rs, result.schedule).ok()) << h.name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HeuristicsNeverBeatOptimal,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace gridbw::exact
