// Unit tests for the worker pool and parallel_for_index.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gridbw {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool{};
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExecutesManyTasks) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool{2};
  auto f = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor must run all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, ZeroCountIsNoop) {
  ThreadPool pool{2};
  parallel_for_index(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForIndex, RethrowsBodyException) {
  ThreadPool pool{2};
  EXPECT_THROW(parallel_for_index(pool, 8,
                                  [](std::size_t i) {
                                    if (i == 3) throw std::logic_error{"bad index"};
                                  }),
               std::logic_error);
}

TEST(SerialForIndex, MatchesParallelResults) {
  std::vector<int> serial(64, 0), parallel(64, 0);
  serial_for_index(serial.size(), [&](std::size_t i) { serial[i] = static_cast<int>(i * i); });
  ThreadPool pool{4};
  parallel_for_index(pool, parallel.size(),
                     [&](std::size_t i) { parallel[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace gridbw
