// Unit tests for the worker pool and parallel_for_index.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace gridbw {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool{};
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ExecutesManyTasks) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool{2};
  auto f = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor must run all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool{2};
  pool.shutdown();
  EXPECT_TRUE(pool.stopping());
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
  // The pool stays in a valid (rejecting) state after the refused submit.
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool{2};
  auto f = pool.submit([] { return 3; });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a double-join
  EXPECT_EQ(f.get(), 3);
  EXPECT_EQ(pool.thread_count(), 2u);  // creation-time count is stable
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  ThreadPool pool{1};
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&counter] { ++counter; });
  }
  pool.shutdown();  // must run all 50 before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, ZeroCountIsNoop) {
  ThreadPool pool{2};
  parallel_for_index(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForIndex, RethrowsBodyException) {
  ThreadPool pool{2};
  EXPECT_THROW(parallel_for_index(pool, 8,
                                  [](std::size_t i) {
                                    if (i == 3) throw std::logic_error{"bad index"};
                                  }),
               std::logic_error);
}

TEST(ParallelForIndex, LowestFailingIndexWinsDeterministically) {
  ThreadPool pool{4};
  // Several indices throw; regardless of which thread finishes first, the
  // caller must always observe the exception from the lowest index.
  for (int round = 0; round < 25; ++round) {
    try {
      parallel_for_index(pool, 64, [](std::size_t i) {
        if (i == 7 || i == 23 || i == 55) {
          throw std::runtime_error{std::to_string(i)};
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7") << "round " << round;
    }
  }
}

TEST(ParallelForIndex, AllIterationsCompleteEvenWhenOneThrows) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for_index(pool, hits.size(),
                                  [&](std::size_t i) {
                                    ++hits[i];
                                    if (i == 0) throw std::logic_error{"early"};
                                  }),
               std::logic_error);
  // The early failure must not cancel the remaining iterations.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SerialForIndex, ThrowsLowestFailingIndexLikeParallel) {
  EXPECT_THROW(serial_for_index(16,
                                [](std::size_t i) {
                                  if (i >= 4) throw std::runtime_error{std::to_string(i)};
                                }),
               std::runtime_error);
  try {
    serial_for_index(16, [](std::size_t i) {
      if (i >= 4) throw std::runtime_error{std::to_string(i)};
    });
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "4");
  }
}

TEST(SerialForIndex, MatchesParallelResults) {
  std::vector<int> serial(64, 0), parallel(64, 0);
  serial_for_index(serial.size(), [&](std::size_t i) { serial[i] = static_cast<int>(i * i); });
  ThreadPool pool{4};
  parallel_for_index(pool, parallel.size(),
                     [&](std::size_t i) { parallel[i] = static_cast<int>(i * i); });
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace gridbw
