// Golden-fixture and unit tests for gridbw-analyze. Each fixture directory
// is a miniature source tree (fixtures/<case>/src/...) with an
// expected.txt pinning the exact diagnostics — path, line, check id, and
// message — so any behavior change in the analyzer is a visible diff.

#include "analyze.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace gridbw::analyze {
namespace {

std::string fixture_root(const std::string& name) {
  return std::string{GRIDBW_ANALYZE_FIXTURES} + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing fixture file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> render_text(const std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) {
    lines.push_back(f.path + ":" + std::to_string(f.line) + ": [" + f.check +
                    "] " + f.message);
  }
  return lines;
}

std::vector<std::string> expected_lines(const std::string& name) {
  std::vector<std::string> lines;
  for (const std::string& line :
       split_lines(read_file(fixture_root(name) + "/expected.txt"))) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

void expect_golden(const std::string& name) {
  const TreeReport report = analyze_tree(fixture_root(name), Options{});
  EXPECT_EQ(render_text(report.findings), expected_lines(name)) << name;
}

// --- golden fixtures: one per check (positive + suppressed + negative) ----

TEST(GoldenFixtures, Layering) { expect_golden("layering"); }
TEST(GoldenFixtures, UnorderedIter) { expect_golden("unordered_iter"); }
TEST(GoldenFixtures, WallClock) { expect_golden("wall_clock"); }
TEST(GoldenFixtures, RngLocality) { expect_golden("rng"); }
TEST(GoldenFixtures, StepFunctionHotPath) { expect_golden("stepfunction"); }
TEST(GoldenFixtures, FloatFormat) { expect_golden("float_format"); }
TEST(GoldenFixtures, UnitSafety) { expect_golden("unit_safety"); }
TEST(GoldenFixtures, HotPath) { expect_golden("hot_path"); }
TEST(GoldenFixtures, LockOrder) { expect_golden("lock_order"); }
TEST(GoldenFixtures, GuardedBy) { expect_golden("guarded_by"); }
TEST(GoldenFixtures, CvWaitPredicate) { expect_golden("cv_wait"); }
TEST(GoldenFixtures, LockScopeHygiene) { expect_golden("lock_hygiene"); }
TEST(GoldenFixtures, AtomicDiscipline) { expect_golden("atomic_discipline"); }
TEST(GoldenFixtures, HotPropagation) { expect_golden("hot_propagation"); }
TEST(GoldenFixtures, RequiresContext) { expect_golden("requires_context"); }
TEST(GoldenFixtures, HotCallUnresolved) { expect_golden("hot_call_unresolved"); }
TEST(GoldenFixtures, RootProfiles) { expect_golden("root_profiles"); }

// --- mutation tests: seed one bug into a clean fixture region, expect the
// --- check to catch it ----------------------------------------------------

std::string fixture_text(const std::string& name, const std::string& rel) {
  return read_file(fixture_root(name) + "/" + rel);
}

std::string mutate(std::string text, const std::string& from,
                   const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "mutation anchor missing: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

std::vector<Finding> analyze_text(const std::string& repo_rel,
                                  const std::string& text) {
  const SourceFile file = make_source(repo_rel, text);
  return analyze_file(file, repo_rel.substr(std::string{"src/"}.size()),
                      Options{});
}

bool has_finding(const std::vector<Finding>& findings, const std::string& check,
                 int line) {
  for (const Finding& f : findings) {
    if (f.check == check && f.line == line) return true;
  }
  return false;
}

TEST(Mutation, DeletingTheContractMakesTheGoodPairUndeclared) {
  const std::string text =
      mutate(fixture_text("lock_order", "src/service/pair.cpp"),
             "// gridbw:lock-order(a < b)", "//");
  const std::vector<Finding> findings =
      analyze_text("src/service/pair.cpp", text);
  // good()'s b-after-a nesting loses its sanction (line 15), and inverted()'s
  // violation downgrades to an undeclared pair — three lock-order findings.
  EXPECT_TRUE(has_finding(findings, "lock-order", 15));
  int lock_order = 0;
  for (const Finding& f : findings) lock_order += f.check == "lock-order";
  EXPECT_EQ(lock_order, 3);
}

TEST(Mutation, DroppingTheLockExposesTheGuardedField) {
  const std::string text =
      mutate(fixture_text("guarded_by", "src/core/cell.cpp"),
             "std::scoped_lock lock{mu};", ";");
  const std::vector<Finding> findings = analyze_text("src/core/cell.cpp", text);
  EXPECT_TRUE(has_finding(findings, "guarded-by", 13));  // good() now bare
  EXPECT_TRUE(has_finding(findings, "guarded-by", 17));  // bad() still caught
}

TEST(Mutation, StrippingThePredicateTripsCvWait) {
  const std::string text =
      mutate(fixture_text("cv_wait", "src/service/waiter.cpp"),
             "cv.wait(lock, [this] { return ready; });", "cv.wait(lock);");
  const std::vector<Finding> findings =
      analyze_text("src/service/waiter.cpp", text);
  EXPECT_TRUE(has_finding(findings, "cv-wait-predicate", 15));
}

TEST(Mutation, RemovingTheUnlockPutsIoBackUnderTheLock) {
  const std::string text =
      mutate(fixture_text("lock_hygiene", "src/core/section.cpp"),
             "lock.unlock();", ";");
  const std::vector<Finding> findings =
      analyze_text("src/core/section.cpp", text);
  EXPECT_TRUE(has_finding(findings, "lock-scope-hygiene", 32));
}

TEST(Mutation, MovingASanctionedFileOutOfItsModuleFlagsTheAtomic) {
  // The same text that scans clean as src/obs/counters.cpp (sanctioned
  // module, line 7's raw atomic) is a finding anywhere else.
  const std::string text =
      fixture_text("atomic_discipline", "src/obs/counters.cpp");
  EXPECT_FALSE(
      has_finding(analyze_text("src/obs/counters.cpp", text), "atomic-discipline", 7));
  EXPECT_TRUE(
      has_finding(analyze_text("src/core/counters.cpp", text), "atomic-discipline", 7));
}

// --- interprocedural mutations: the three graph checks need a tree scan,
// --- so these go through analyze_loaded with in-memory files --------------

LoadedFile loaded(const std::string& rel, std::string text,
                  std::string companion = "") {
  LoadedFile f;
  f.rel = rel;
  f.root_rel = rel.substr(std::string{"src/"}.size());
  f.root_index = 0;
  f.text = std::move(text);
  f.companion = std::move(companion);
  f.has_companion = !f.companion.empty();
  return f;
}

TEST(Mutation, InsertingAnAllocationIntoAHotCalleeTripsPropagation) {
  const std::string helper_hpp =
      fixture_text("hot_propagation", "src/core/helper.hpp");
  const std::string helper_cpp =
      fixture_text("hot_propagation", "src/core/helper.cpp");
  const std::string kernel =
      mutate(fixture_text("hot_propagation", "src/core/kernel.cpp"),
             "int charge(int n) { return expand(n) + 1; }",
             "int charge(int n) { return *new int{expand(n) + 1}; }");
  const TreeReport report = analyze_loaded(
      {loaded("src/core/helper.cpp", helper_cpp, helper_hpp),
       loaded("src/core/helper.hpp", helper_hpp),
       loaded("src/core/kernel.cpp", kernel)},
      Options{});
  // charge was the clean interior callee; now the walk flags it too.
  EXPECT_TRUE(has_finding(report.findings, "hot-propagation", 15));
}

TEST(Mutation, DroppingTheLockAtARequiresCallSiteTripsContext) {
  const std::string cell =
      mutate(fixture_text("requires_context", "src/core/cell.cpp"),
             "std::lock_guard<std::mutex> lk{mu};", ";");
  const TreeReport report =
      analyze_loaded({loaded("src/core/cell.cpp", cell)}, Options{});
  EXPECT_TRUE(has_finding(report.findings, "requires-context", 16));  // good_caller now bare
  EXPECT_TRUE(has_finding(report.findings, "requires-context", 22));  // bad_caller still caught
}

TEST(Mutation, StrippingTheCalleeAllowReopensTheWalkBoundary) {
  const std::string helper_hpp =
      fixture_text("hot_propagation", "src/core/helper.hpp");
  const std::string helper_cpp = mutate(
      fixture_text("hot_propagation", "src/core/helper.cpp"),
      "// GRIDBW-ALLOW(hot-propagation): amortized refill, measured off the sweep",
      "//");
  const std::string kernel =
      fixture_text("hot_propagation", "src/core/kernel.cpp");
  const TreeReport report = analyze_loaded(
      {loaded("src/core/helper.cpp", helper_cpp, helper_hpp),
       loaded("src/core/helper.hpp", helper_hpp),
       loaded("src/core/kernel.cpp", kernel)},
      Options{});
  // boundary_refill's allocation stops being sanctioned.
  EXPECT_TRUE(has_finding(report.findings, "hot-propagation", 18));
}

TEST(Mutation, StrippingTheAllowExposesTheHotVirtualCall) {
  const std::string dispatch = mutate(
      fixture_text("hot_call_unresolved", "src/core/dispatch.cpp"),
      "// GRIDBW-ALLOW(hot-call-unresolved): devirtualized in release builds",
      "//");
  const TreeReport report =
      analyze_loaded({loaded("src/core/dispatch.cpp", dispatch)}, Options{});
  EXPECT_TRUE(has_finding(report.findings, "hot-call-unresolved", 24));
}

// --- baseline semantics ---------------------------------------------------

TEST(BaselineCase, GrandfathersListedFindingOnly) {
  const std::string root = fixture_root("baseline_case");
  const TreeReport report = analyze_tree(root, Options{});
  ASSERT_EQ(report.findings.size(), 2u);
  const Baseline baseline = parse_baseline(read_file(root + "/baseline.txt"));
  const BaselineSplit split =
      apply_baseline(report.findings, report.keys, baseline);
  ASSERT_EQ(split.fresh.size(), 1u);
  EXPECT_EQ(split.fresh[0].line, 13);  // new_engine stays a failure
  ASSERT_EQ(split.baselined.size(), 1u);
  EXPECT_EQ(split.baselined[0].line, 8);  // legacy_engine is tolerated
  EXPECT_TRUE(split.stale.empty());
}

TEST(BaselineCase, StaleEntriesAreReportedWhenFindingVanishes) {
  Baseline baseline;
  baseline["rng-locality|src/gone.cpp|std::mt19937 g;"] = 1;
  const BaselineSplit split = apply_baseline({}, {}, baseline);
  EXPECT_TRUE(split.fresh.empty());
  ASSERT_EQ(split.stale.size(), 1u);
  EXPECT_EQ(split.stale[0], "rng-locality|src/gone.cpp|std::mt19937 g;");
}

TEST(BaselineCase, KeyIsContentBasedNotLineBased) {
  const SourceFile file =
      make_source("src/x.cpp", "int a;\n  std::mt19937 g{1};\n");
  const Finding finding{"src/x.cpp", 2, "rng-locality", "msg"};
  EXPECT_EQ(baseline_key(finding, file),
            "rng-locality|src/x.cpp|std::mt19937 g{1};");
}

TEST(BaselineCase, RoundTripsThroughRenderAndParse) {
  const std::vector<std::string> keys = {"b|src/y.cpp|two", "a|src/x.cpp|one",
                                         "a|src/x.cpp|one"};
  const Baseline parsed = parse_baseline(render_baseline(keys));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("a|src/x.cpp|one"), 2);
  EXPECT_EQ(parsed.at("b|src/y.cpp|two"), 1);
}

// --- suppression ----------------------------------------------------------

TEST(Suppression, SameLineAndLineAbove) {
  const SourceFile file = make_source(
      "src/x.cpp",
      "std::mt19937 a;  // GRIDBW-ALLOW(rng-locality): reason\n"
      "// GRIDBW-ALLOW(rng-locality): reason\n"
      "std::mt19937 b;\n"
      "std::mt19937 c;\n");
  EXPECT_TRUE(file.suppressed(1, "rng-locality"));
  EXPECT_TRUE(file.suppressed(3, "rng-locality"));
  EXPECT_FALSE(file.suppressed(4, "rng-locality"));
  EXPECT_FALSE(file.suppressed(1, "wall-clock"));  // id must match exactly
}

TEST(Suppression, WorksOnTheLastLineWithoutTrailingNewline) {
  const SourceFile file = make_source(
      "src/core/x.cpp",
      "int a;\n"
      "std::mt19937 g;  // GRIDBW-ALLOW(rng-locality): last line, no \\n");
  EXPECT_TRUE(file.suppressed(2, "rng-locality"));
  EXPECT_TRUE(analyze_text("src/core/x.cpp",
                           "std::mt19937 g;  // GRIDBW-ALLOW(rng-locality): x")
                  .empty());
}

TEST(Suppression, TwoIdsOnOneLineSilenceTwoChecks) {
  // One line can trip two checks; both ids ride on the line above.
  const std::string body =
      "std::mt19937 g{static_cast<unsigned>(std::time(nullptr))};\n";
  const std::string both =
      "// GRIDBW-ALLOW(rng-locality): demo GRIDBW-ALLOW(wall-clock): demo\n" +
      body;
  EXPECT_TRUE(analyze_text("src/core/x.cpp", both).empty());
  const std::string one =
      "// GRIDBW-ALLOW(rng-locality): demo\n" + body;
  const std::vector<Finding> findings = analyze_text("src/core/x.cpp", one);
  ASSERT_EQ(findings.size(), 1u);  // wall-clock survives
  EXPECT_EQ(findings[0].check, "wall-clock");
}

TEST(Suppression, UnknownAllowIdIsReportedStale) {
  // Splice the marker so this test file itself never carries a stale ALLOW.
  const std::string text = std::string{"int a;  // GRIDBW-AL"} +
                           "LOW(bogus-check): typo'd id\n"
                           "// GRIDBW-AL" "LOW(rng-locality): known id\n"
                           "std::mt19937 g;\n"
                           "// a prose mention of GRIDBW-AL" "LOW(<check>) is not an id\n";
  const SourceFile file = make_source("src/core/x.cpp", text);
  const std::vector<std::string> stale = stale_allows_in(file);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "src/core/x.cpp:1: bogus-check");
}

// --- scope model ----------------------------------------------------------

TEST(ScopeModel, MutexSuffixMatching) {
  EXPECT_TRUE(mutex_matches("mu", "mu"));
  EXPECT_TRUE(mutex_matches("cell.mu", "mu"));
  EXPECT_TRUE(mutex_matches("impl_->ingest_mu", "ingest_mu"));
  EXPECT_FALSE(mutex_matches("ingest_mu", "mu"));  // not a member step
  EXPECT_FALSE(mutex_matches("mu", "ingest_mu"));
}

TEST(ScopeModel, ExplicitUnlockEndsTheHoldEarly) {
  const std::string text =
      "#include <mutex>\n"
      "void f(std::mutex& m) {\n"
      "  std::unique_lock lock{m};\n"
      "  lock.unlock();\n"
      "  std::cout << 1;\n"  // outside the hold: no hygiene finding
      "}\n";
  const std::vector<Finding> findings = analyze_text("src/core/x.cpp", text);
  for (const Finding& f : findings) EXPECT_NE(f.check, "lock-scope-hygiene");
}

TEST(ScopeModel, RequiresAnnotationBindsTheNextFunctionBody) {
  const std::string text =
      "#include <mutex>\n"
      "struct S {\n"
      "  std::mutex mu;\n"
      "  int x{0};  // gridbw:guarded_by(mu)\n"
      "  // gridbw:requires(mu)\n"
      "  void touch() { x += 1; }\n"
      "  void loose() { x += 1; }\n"
      "};\n";
  const std::vector<Finding> findings = analyze_text("src/core/x.cpp", text);
  EXPECT_FALSE(has_finding(findings, "guarded-by", 6));
  EXPECT_TRUE(has_finding(findings, "guarded-by", 7));
}

TEST(ScopeModel, CompanionHeaderAnnotationsBindInTheCpp) {
  SourceFile file = make_source("src/core/x.cpp",
                                "#include <mutex>\n"
                                "void S_touch(S& s) { s.x += 1; }\n");
  attach_companion(file,
                   "struct S {\n"
                   "  std::mutex mu;\n"
                   "  int x{0};  // gridbw:guarded_by(mu)\n"
                   "};\n");
  const std::vector<Finding> findings =
      analyze_file(file, "core/x.cpp", Options{});
  EXPECT_TRUE(has_finding(findings, "guarded-by", 2));
}

// --- layering table -------------------------------------------------------

TEST(Layering, ModuleMapping) {
  EXPECT_EQ(module_of("core/ledger.hpp"), "core");
  EXPECT_EQ(module_of("obs/trace_sink.hpp"), "obs");
  EXPECT_EQ(module_of("obs/utilization.hpp"), "obs_export");
  EXPECT_EQ(module_of("obs/utilization.cpp"), "obs_export");
  EXPECT_EQ(module_of("gridbw.hpp"), "umbrella");
  EXPECT_EQ(module_of("nonexistent/x.hpp"), "");
}

TEST(Layering, CoreStaysBelowSchedulers) {
  EXPECT_FALSE(layering_allows("core", "heuristics"));
  EXPECT_FALSE(layering_allows("core", "exact"));
  EXPECT_FALSE(layering_allows("core", "sim"));
  EXPECT_TRUE(layering_allows("core", "util"));
  EXPECT_TRUE(layering_allows("core", "obs"));
  EXPECT_FALSE(layering_allows("obs", "core"));  // only the ids carve-out
}

TEST(Layering, TransitiveClosureAndExportLayer) {
  // control -> heuristics -> core -> util: the closure admits the chain.
  EXPECT_TRUE(layering_allows("control", "core"));
  EXPECT_TRUE(layering_allows("control", "util"));
  EXPECT_TRUE(layering_allows("control", "obs"));
  EXPECT_FALSE(layering_allows("heuristics", "control"));
  // Anything that sees core may use the utilization export layer.
  EXPECT_TRUE(layering_allows("heuristics", "obs_export"));
  EXPECT_TRUE(layering_allows("metrics", "obs_export"));
  EXPECT_FALSE(layering_allows("obs", "obs_export"));
  EXPECT_FALSE(layering_allows("sim", "obs_export"));
  // The churn service sits beside the schedulers: above core/obs, and
  // nothing below may reach up into it.
  EXPECT_TRUE(layering_allows("service", "core"));
  EXPECT_TRUE(layering_allows("service", "obs"));
  EXPECT_TRUE(layering_allows("service", "obs_export"));
  EXPECT_FALSE(layering_allows("service", "heuristics"));
  EXPECT_FALSE(layering_allows("core", "service"));
  // The umbrella header sees everything; nothing includes it back.
  EXPECT_TRUE(layering_allows("umbrella", "control"));
  EXPECT_FALSE(layering_allows("metrics", "umbrella"));
}

// --- lexer-lite -----------------------------------------------------------

TEST(Stripper, PreservesLineStructure) {
  const std::string text =
      "int a; // comment with std::mt19937\n"
      "/* block\n   spanning\n   lines */ int b;\n"
      "const char* s = \"std::rand()\";\n";
  const std::string stripped = strip_comments_and_strings(text);
  EXPECT_EQ(split_lines(stripped).size(), split_lines(text).size());
  EXPECT_EQ(stripped.find("mt19937"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(Stripper, CommentedDirectivesDoNotCount) {
  const SourceFile file = make_source(
      "src/core/x.cpp", "// #include \"heuristics/rigid_fcfs.hpp\"\nint a;\n");
  const std::vector<Finding> findings =
      analyze_file(file, "core/x.cpp", Options{});
  EXPECT_TRUE(findings.empty());
}

// --- check filtering and output rendering ---------------------------------

TEST(Options, ChecksFilterRestrictsToListed) {
  const SourceFile file = make_source(
      "src/core/x.cpp",
      "#include \"heuristics/a.hpp\"\nstd::mt19937 gen{1};\n");
  Options only_layering;
  only_layering.checks.insert("layering");
  const std::vector<Finding> findings =
      analyze_file(file, "core/x.cpp", only_layering);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
}

TEST(Output, JsonIsEscapedAndDeterministic) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "wall-clock", "a \"quoted\" message"}};
  const std::string json = render_json(findings);
  EXPECT_NE(json.find("\"path\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\" message"), std::string::npos);
}

TEST(Catalogue, ListsAllSixteenChecks) {
  const std::vector<CheckInfo>& catalogue = check_catalogue();
  ASSERT_EQ(catalogue.size(), 16u);
  EXPECT_STREQ(catalogue.front().id, "layering");
  // The concurrency-discipline family, in order.
  EXPECT_STREQ(catalogue[8].id, "lock-order");
  EXPECT_STREQ(catalogue[9].id, "guarded-by");
  EXPECT_STREQ(catalogue[10].id, "cv-wait-predicate");
  EXPECT_STREQ(catalogue[11].id, "lock-scope-hygiene");
  EXPECT_STREQ(catalogue[12].id, "atomic-discipline");
  // The interprocedural family closes the catalogue.
  EXPECT_STREQ(catalogue[13].id, "hot-propagation");
  EXPECT_STREQ(catalogue[14].id, "requires-context");
  EXPECT_STREQ(catalogue[15].id, "hot-call-unresolved");
}

TEST(Output, TreeScanIsByteIdenticalAcrossThreadCounts) {
  Options serial;
  serial.threads = 1;
  Options pooled;
  pooled.threads = 4;
  // root_profiles exercises the per-root skip logic; hot_propagation the
  // two-phase interprocedural scan (whose serial graph pass must not leak
  // any thread-count dependence into the merged report).
  for (const char* name : {"root_profiles", "hot_propagation"}) {
    const std::string root = fixture_root(name);
    const TreeReport a = analyze_tree(root, serial);
    const TreeReport b = analyze_tree(root, pooled);
    EXPECT_EQ(render_json(a.findings), render_json(b.findings)) << name;
    EXPECT_EQ(a.keys, b.keys) << name;
    EXPECT_EQ(a.files_scanned, b.files_scanned) << name;
    EXPECT_EQ(a.stale_allows, b.stale_allows) << name;
    EXPECT_EQ(a.call_edges_resolved, b.call_edges_resolved) << name;
    EXPECT_EQ(a.call_edges_unresolved, b.call_edges_unresolved) << name;
  }
}

TEST(Output, AtomicWriteLandsWholeFileAndLeavesNoTemp) {
  const std::string path =
      ::testing::TempDir() + "gridbw_analyze_atomic_test.json";
  write_file_atomic(path, "[]\n");
  EXPECT_EQ(read_file(path), "[]\n");
  // Replacing an existing file goes through the same temp + rename, so a
  // reader can never observe a truncated body; the temp must be gone.
  write_file_atomic(path, "[{\"line\": 3}]\n");
  EXPECT_EQ(read_file(path), "[{\"line\": 3}]\n");
  std::ifstream temp{path + ".tmp"};
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

TEST(Output, AtomicWriteThrowsWhenTheDirectoryIsMissing) {
  const std::string path =
      ::testing::TempDir() + "gridbw_analyze_no_such_dir/report.json";
  EXPECT_THROW(write_file_atomic(path, "x"), std::runtime_error);
}

TEST(Cli, UsageTextDocumentsEveryFlag) {
  const std::string usage = usage_text();
  for (const char* flag :
       {"--root", "--baseline", "--fix-baseline", "--checks", "--threads",
        "--json", "--json-out", "--summary", "--list-checks"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(RootProfiles, SkippedChecksComeBackWithAnExplicitChecksFilter) {
  // bench/ relaxes wall-clock during a default scan (the golden fixture pins
  // that), but per-root profiles only subtract: a user asking for exactly
  // the skipped check gets an empty bench scan, not a full-catalogue one.
  Options only_wall_clock;
  only_wall_clock.checks.insert("wall-clock");
  const TreeReport report =
      analyze_tree(fixture_root("root_profiles"), only_wall_clock);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.check, "wall-clock");
    EXPECT_NE(f.path.rfind("bench/", 0), 0u) << f.path;
  }
  // src/ and tools/ keep wall-clock on, so the filter still finds those two.
  EXPECT_EQ(report.findings.size(), 2u);
}

// --- the real tree stays clean --------------------------------------------
// The authoritative zero-findings wall is the `gridbw_analyze` ctest (CLI +
// committed baseline); this sanity check keeps the library API honest about
// scan scope when run from the build tree.

TEST(WholeTree, ScansAtLeastTheSeedFileCount) {
#ifdef GRIDBW_ANALYZE_REPO_ROOT
  const TreeReport report = analyze_tree(GRIDBW_ANALYZE_REPO_ROOT, Options{});
  EXPECT_GE(report.files_scanned, 100u);
  EXPECT_TRUE(report.findings.empty())
      << render_text(report.findings).front();
#else
  GTEST_SKIP() << "repo root not wired";
#endif
}

}  // namespace
}  // namespace gridbw::analyze
