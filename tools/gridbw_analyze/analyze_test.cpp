// Golden-fixture and unit tests for gridbw-analyze. Each fixture directory
// is a miniature source tree (fixtures/<case>/src/...) with an
// expected.txt pinning the exact diagnostics — path, line, check id, and
// message — so any behavior change in the analyzer is a visible diff.

#include "analyze.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gridbw::analyze {
namespace {

std::string fixture_root(const std::string& name) {
  return std::string{GRIDBW_ANALYZE_FIXTURES} + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing fixture file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> render_text(const std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) {
    lines.push_back(f.path + ":" + std::to_string(f.line) + ": [" + f.check +
                    "] " + f.message);
  }
  return lines;
}

std::vector<std::string> expected_lines(const std::string& name) {
  std::vector<std::string> lines;
  for (const std::string& line :
       split_lines(read_file(fixture_root(name) + "/expected.txt"))) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

void expect_golden(const std::string& name) {
  const TreeReport report = analyze_tree(fixture_root(name), Options{});
  EXPECT_EQ(render_text(report.findings), expected_lines(name)) << name;
}

// --- golden fixtures: one per check (positive + suppressed + negative) ----

TEST(GoldenFixtures, Layering) { expect_golden("layering"); }
TEST(GoldenFixtures, UnorderedIter) { expect_golden("unordered_iter"); }
TEST(GoldenFixtures, WallClock) { expect_golden("wall_clock"); }
TEST(GoldenFixtures, RngLocality) { expect_golden("rng"); }
TEST(GoldenFixtures, StepFunctionHotPath) { expect_golden("stepfunction"); }
TEST(GoldenFixtures, FloatFormat) { expect_golden("float_format"); }
TEST(GoldenFixtures, UnitSafety) { expect_golden("unit_safety"); }
TEST(GoldenFixtures, HotPath) { expect_golden("hot_path"); }

// --- baseline semantics ---------------------------------------------------

TEST(BaselineCase, GrandfathersListedFindingOnly) {
  const std::string root = fixture_root("baseline_case");
  const TreeReport report = analyze_tree(root, Options{});
  ASSERT_EQ(report.findings.size(), 2u);
  const Baseline baseline = parse_baseline(read_file(root + "/baseline.txt"));
  const BaselineSplit split =
      apply_baseline(report.findings, report.keys, baseline);
  ASSERT_EQ(split.fresh.size(), 1u);
  EXPECT_EQ(split.fresh[0].line, 13);  // new_engine stays a failure
  ASSERT_EQ(split.baselined.size(), 1u);
  EXPECT_EQ(split.baselined[0].line, 8);  // legacy_engine is tolerated
  EXPECT_TRUE(split.stale.empty());
}

TEST(BaselineCase, StaleEntriesAreReportedWhenFindingVanishes) {
  Baseline baseline;
  baseline["rng-locality|src/gone.cpp|std::mt19937 g;"] = 1;
  const BaselineSplit split = apply_baseline({}, {}, baseline);
  EXPECT_TRUE(split.fresh.empty());
  ASSERT_EQ(split.stale.size(), 1u);
  EXPECT_EQ(split.stale[0], "rng-locality|src/gone.cpp|std::mt19937 g;");
}

TEST(BaselineCase, KeyIsContentBasedNotLineBased) {
  const SourceFile file =
      make_source("src/x.cpp", "int a;\n  std::mt19937 g{1};\n");
  const Finding finding{"src/x.cpp", 2, "rng-locality", "msg"};
  EXPECT_EQ(baseline_key(finding, file),
            "rng-locality|src/x.cpp|std::mt19937 g{1};");
}

TEST(BaselineCase, RoundTripsThroughRenderAndParse) {
  const std::vector<std::string> keys = {"b|src/y.cpp|two", "a|src/x.cpp|one",
                                         "a|src/x.cpp|one"};
  const Baseline parsed = parse_baseline(render_baseline(keys));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("a|src/x.cpp|one"), 2);
  EXPECT_EQ(parsed.at("b|src/y.cpp|two"), 1);
}

// --- suppression ----------------------------------------------------------

TEST(Suppression, SameLineAndLineAbove) {
  const SourceFile file = make_source(
      "src/x.cpp",
      "std::mt19937 a;  // GRIDBW-ALLOW(rng-locality): reason\n"
      "// GRIDBW-ALLOW(rng-locality): reason\n"
      "std::mt19937 b;\n"
      "std::mt19937 c;\n");
  EXPECT_TRUE(file.suppressed(1, "rng-locality"));
  EXPECT_TRUE(file.suppressed(3, "rng-locality"));
  EXPECT_FALSE(file.suppressed(4, "rng-locality"));
  EXPECT_FALSE(file.suppressed(1, "wall-clock"));  // id must match exactly
}

// --- layering table -------------------------------------------------------

TEST(Layering, ModuleMapping) {
  EXPECT_EQ(module_of("core/ledger.hpp"), "core");
  EXPECT_EQ(module_of("obs/trace_sink.hpp"), "obs");
  EXPECT_EQ(module_of("obs/utilization.hpp"), "obs_export");
  EXPECT_EQ(module_of("obs/utilization.cpp"), "obs_export");
  EXPECT_EQ(module_of("gridbw.hpp"), "umbrella");
  EXPECT_EQ(module_of("nonexistent/x.hpp"), "");
}

TEST(Layering, CoreStaysBelowSchedulers) {
  EXPECT_FALSE(layering_allows("core", "heuristics"));
  EXPECT_FALSE(layering_allows("core", "exact"));
  EXPECT_FALSE(layering_allows("core", "sim"));
  EXPECT_TRUE(layering_allows("core", "util"));
  EXPECT_TRUE(layering_allows("core", "obs"));
  EXPECT_FALSE(layering_allows("obs", "core"));  // only the ids carve-out
}

TEST(Layering, TransitiveClosureAndExportLayer) {
  // control -> heuristics -> core -> util: the closure admits the chain.
  EXPECT_TRUE(layering_allows("control", "core"));
  EXPECT_TRUE(layering_allows("control", "util"));
  EXPECT_TRUE(layering_allows("control", "obs"));
  EXPECT_FALSE(layering_allows("heuristics", "control"));
  // Anything that sees core may use the utilization export layer.
  EXPECT_TRUE(layering_allows("heuristics", "obs_export"));
  EXPECT_TRUE(layering_allows("metrics", "obs_export"));
  EXPECT_FALSE(layering_allows("obs", "obs_export"));
  EXPECT_FALSE(layering_allows("sim", "obs_export"));
  // The churn service sits beside the schedulers: above core/obs, and
  // nothing below may reach up into it.
  EXPECT_TRUE(layering_allows("service", "core"));
  EXPECT_TRUE(layering_allows("service", "obs"));
  EXPECT_TRUE(layering_allows("service", "obs_export"));
  EXPECT_FALSE(layering_allows("service", "heuristics"));
  EXPECT_FALSE(layering_allows("core", "service"));
  // The umbrella header sees everything; nothing includes it back.
  EXPECT_TRUE(layering_allows("umbrella", "control"));
  EXPECT_FALSE(layering_allows("metrics", "umbrella"));
}

// --- lexer-lite -----------------------------------------------------------

TEST(Stripper, PreservesLineStructure) {
  const std::string text =
      "int a; // comment with std::mt19937\n"
      "/* block\n   spanning\n   lines */ int b;\n"
      "const char* s = \"std::rand()\";\n";
  const std::string stripped = strip_comments_and_strings(text);
  EXPECT_EQ(split_lines(stripped).size(), split_lines(text).size());
  EXPECT_EQ(stripped.find("mt19937"), std::string::npos);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(Stripper, CommentedDirectivesDoNotCount) {
  const SourceFile file = make_source(
      "src/core/x.cpp", "// #include \"heuristics/rigid_fcfs.hpp\"\nint a;\n");
  const std::vector<Finding> findings =
      analyze_file(file, "core/x.cpp", Options{});
  EXPECT_TRUE(findings.empty());
}

// --- check filtering and output rendering ---------------------------------

TEST(Options, ChecksFilterRestrictsToListed) {
  const SourceFile file = make_source(
      "src/core/x.cpp",
      "#include \"heuristics/a.hpp\"\nstd::mt19937 gen{1};\n");
  Options only_layering;
  only_layering.checks.insert("layering");
  const std::vector<Finding> findings =
      analyze_file(file, "core/x.cpp", only_layering);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layering");
}

TEST(Output, JsonIsEscapedAndDeterministic) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "wall-clock", "a \"quoted\" message"}};
  const std::string json = render_json(findings);
  EXPECT_NE(json.find("\"path\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("a \\\"quoted\\\" message"), std::string::npos);
}

TEST(Catalogue, ListsAllEightChecks) {
  const std::vector<CheckInfo>& catalogue = check_catalogue();
  ASSERT_EQ(catalogue.size(), 8u);
  EXPECT_STREQ(catalogue.front().id, "layering");
}

// --- the real tree stays clean --------------------------------------------
// The authoritative zero-findings wall is the `gridbw_analyze` ctest (CLI +
// committed baseline); this sanity check keeps the library API honest about
// scan scope when run from the build tree.

TEST(WholeTree, ScansAtLeastTheSeedFileCount) {
#ifdef GRIDBW_ANALYZE_REPO_ROOT
  const TreeReport report = analyze_tree(GRIDBW_ANALYZE_REPO_ROOT, Options{});
  EXPECT_GE(report.files_scanned, 100u);
  EXPECT_TRUE(report.findings.empty())
      << render_text(report.findings).front();
#else
  GTEST_SKIP() << "repo root not wired";
#endif
}

}  // namespace
}  // namespace gridbw::analyze
