// Project-wide symbol index (ISSUE 10): the per-file half. The scope parser
// (scope.cpp) already finds every outermost function body; this layer names
// them — the qualified identifier written before the parameter list — and
// binds the gridbw annotations (hot, requires, symbol-level ALLOWs) to the
// symbol, from the definition file and from the sibling header (a
// `// gridbw:hot` above a declaration in x.hpp marks the definition in
// x.cpp, matched by name suffix). Per-file tables are merged into the global
// index in sorted-path order (callgraph.hpp), so the result is byte-stable
// for any --threads value.
//
// Deliberately lexical, like the rest of the analyzer: names are extracted
// textually, so `operator` overloads, `noexcept(...)`-qualified headers, and
// constructor bodies behind member-initializer lists are skipped rather than
// guessed at — an unindexed function makes an edge unresolved (recorded,
// non-fatal), never a wrong edge.

#pragma once

#include "analyze.hpp"

#include <string>
#include <vector>

namespace gridbw::analyze {

/// One outermost function definition in one file.
struct Symbol {
  std::string qualified;  // as written before '(', e.g. "NetworkLedger::fits"
  std::string name;       // last '::' component
  std::size_t body_open = 0;   // offsets into the file's joined stripped code
  std::size_t body_close = 0;
  int line = 0;                // 1-based line of the body-open brace
  bool hot = false;            // // gridbw:hot on the definition or the
                               // sibling-header declaration (name-bound)
  bool hot_allow = false;      // GRIDBW-ALLOW(hot-propagation) on the
                               // definition header line (or the line above)
  std::vector<std::string> requires_mutexes;  // gridbw:requires operands
};

/// Everything the global passes need from one file, extracted in phase 1.
struct FileSymbols {
  std::vector<Symbol> symbols;               // in body_open order
  std::vector<std::string> quoted_includes;  // #include "..." paths as written
  /// Names declared with std::function type in this file or its companion —
  /// calls through them can never be resolved by the graph.
  std::vector<std::string> callable_names;
  /// Method names declared `virtual` here (destructors excluded) — the
  /// global union forms the virtual-sink name set.
  std::vector<std::string> virtual_methods;
};

/// Builds the per-file symbol table. `code`/`starts` are the joined stripped
/// text and its line starts; `scope` must come from build_scope_info on the
/// same inputs.
[[nodiscard]] FileSymbols extract_symbols(const SourceFile& file,
                                          const std::string& code,
                                          const std::vector<std::size_t>& starts,
                                          const ScopeInfo& scope);

}  // namespace gridbw::analyze
