#include "symbols.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

/// Position of the '(' opening the parameter list of the function header
/// whose body opens at `open` — the same backward scan classify_scope uses
/// (scope.cpp): skip the header tail (qualifiers, trailing return, ctor-init
/// commas), match the ')' back to its '('. npos when the shape is not a
/// plausible header (the scope parser then never called it a function).
std::size_t header_param_open(const std::string& code, std::size_t open) {
  std::size_t i = open;
  while (i > 0) {
    const char c = code[i - 1];
    const bool skip = is_ident(c) || c == ' ' || c == '\t' || c == '\n' ||
                      c == ':' || c == '<' || c == '>' || c == ',' ||
                      c == '*' || c == '&' || c == '-';
    if (!skip) break;
    --i;
  }
  if (i == 0 || code[i - 1] != ')') return std::string::npos;
  int depth = 0;
  std::size_t j = i - 1;
  while (true) {
    const char c = code[j];
    if (c == ')') ++depth;
    if (c == '(') {
      --depth;
      if (depth == 0) return j;
    }
    if (j == 0) return std::string::npos;
    --j;
  }
}

/// The qualified identifier directly before `paren`: identifier characters,
/// '~', and '::' separators ("AdmissionService::execute_arrival"). Empty for
/// operator overloads and other unnameable shapes.
std::string qualified_before(const std::string& code, std::size_t paren) {
  std::size_t end = paren;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(code[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0) {
    const char c = code[begin - 1];
    if (is_ident(c) || c == '~') {
      --begin;
      continue;
    }
    if (c == ':' && begin > 1 && code[begin - 2] == ':') {
      begin -= 2;
      continue;
    }
    break;
  }
  // A leading "::" (global qualification) carries no name information.
  std::string name = code.substr(begin, end - begin);
  while (name.compare(0, 2, "::") == 0) name = name.substr(2);
  return name;
}

std::string last_component(const std::string& qualified) {
  const std::size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? qualified : qualified.substr(sep + 2);
}

/// Headers that the scope parser classified as functions but that carry no
/// usable name: noexcept(...) tails, operator overloads, keywords.
bool unnameable(const std::string& qualified) {
  if (qualified.empty()) return true;
  if (qualified.find("operator") != std::string::npos) return true;
  const std::string last = last_component(qualified);
  return last.empty() || last == "noexcept" || last == "decltype" ||
         last == "requires" || last == "alignas";
}

/// The first '{' at or after the line following `annotation_line` (0-based),
/// i.e. the body the standalone-comment annotation binds to — the same rule
/// check_hot_path uses.
std::size_t body_after_line(const std::string& code,
                            const std::vector<std::size_t>& starts,
                            std::size_t annotation_line) {
  const std::size_t from = annotation_line + 1 < starts.size()
                               ? starts[annotation_line + 1]
                               : code.size();
  return code.find('{', from);
}

std::vector<std::string> split_operands(const std::string& inner) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : inner) {
    if (c == ',') {
      if (!strip_spaces(current).empty()) parts.push_back(strip_spaces(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!strip_spaces(current).empty()) parts.push_back(strip_spaces(current));
  return parts;
}

/// The name declared by the first '('-terminated identifier in the lines
/// following `from` — how sibling-header annotations bind: the annotation is
/// a standalone comment line, the declaration follows, and the declared
/// function's name is the identifier before its parameter list.
std::string declared_name_after(const std::vector<std::string>& code_lines,
                                std::size_t from) {
  for (std::size_t i = from; i < code_lines.size() && i < from + 4; ++i) {
    const std::string& line = code_lines[i];
    const std::size_t paren = line.find('(');
    if (paren == std::string::npos) continue;
    std::size_t end = paren;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(line[end - 1])) != 0) {
      --end;
    }
    std::size_t begin = end;
    while (begin > 0 && is_ident(line[begin - 1])) --begin;
    if (end > begin) return line.substr(begin, end - begin);
    return "";
  }
  return "";
}

Symbol* symbol_with_body(std::vector<Symbol>& symbols, std::size_t open) {
  for (Symbol& s : symbols) {
    if (s.body_open == open) return &s;
  }
  return nullptr;
}

void collect_includes(const SourceFile& file, std::vector<std::string>* out) {
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& code_line = file.code_lines[i];
    const std::size_t hash = code_line.find_first_not_of(" \t");
    if (hash == std::string::npos || code_line[hash] != '#') continue;
    const std::size_t kw = skip_ws(code_line, hash + 1);
    if (code_line.compare(kw, 7, "include") != 0) continue;
    const std::string& raw = file.raw_lines[i];
    const std::size_t open = raw.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    out->push_back(raw.substr(open + 1, close - open - 1));
  }
}

/// Names declared with std::function type: `std::function<...>[&*] name`.
void collect_callable_names(const std::string& code,
                            std::vector<std::string>* out) {
  static const std::string kToken = "std::function";
  std::size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    std::size_t i = pos + kToken.size();
    pos = i;
    i = skip_ws(code, i);
    if (i >= code.size() || code[i] != '<') continue;
    int depth = 0;
    while (i < code.size()) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>') {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
    i = skip_ws(code, i);
    while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
      i = skip_ws(code, i + 1);
    }
    std::size_t end = i;
    while (end < code.size() && is_ident(code[end])) ++end;
    if (end > i) out->push_back(code.substr(i, end - i));
  }
}

/// Method names declared `virtual` (destructors excluded): the identifier
/// before the next '(' after the keyword, on the same declaration.
void collect_virtual_methods(const std::string& code,
                             std::vector<std::string>* out) {
  static const std::string kToken = "virtual";
  std::size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += kToken.size();
    if (hit > 0 && is_ident(code[hit - 1])) continue;
    if (pos < code.size() && is_ident(code[pos])) continue;
    const std::size_t paren = code.find('(', pos);
    if (paren == std::string::npos || paren > pos + 200) continue;
    std::size_t end = paren;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(code[end - 1])) != 0) {
      --end;
    }
    std::size_t begin = end;
    while (begin > 0 && is_ident(code[begin - 1])) --begin;
    if (end == begin) continue;
    if (begin > 0 && code[begin - 1] == '~') continue;  // destructor
    out->push_back(code.substr(begin, end - begin));
  }
}

void sort_unique(std::vector<std::string>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

FileSymbols extract_symbols(const SourceFile& file, const std::string& code,
                            const std::vector<std::size_t>& starts,
                            const ScopeInfo& scope) {
  FileSymbols table;

  for (const FunctionScope& fn : scope.functions) {
    const std::size_t paren = header_param_open(code, fn.open);
    if (paren == std::string::npos) continue;
    const std::string qualified = qualified_before(code, paren);
    if (unnameable(qualified)) continue;
    Symbol symbol;
    symbol.qualified = qualified;
    symbol.name = last_component(qualified);
    symbol.body_open = fn.open;
    symbol.body_close = fn.close;
    symbol.line = line_of(starts, fn.open);
    symbol.hot_allow = file.suppressed(symbol.line, "hot-propagation");
    table.symbols.push_back(std::move(symbol));
  }
  std::sort(table.symbols.begin(), table.symbols.end(),
            [](const Symbol& a, const Symbol& b) {
              return a.body_open < b.body_open;
            });

  // Definition-file annotations bind by body position (the first '{' after
  // the standalone comment line), exactly like the intraprocedural checks.
  static const std::string kHot = "// gridbw:hot";
  static const std::string kRequires = "// gridbw:requires(";
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string line = trim(file.raw_lines[i]);
    if (line == kHot) {
      Symbol* s = symbol_with_body(table.symbols, body_after_line(code, starts, i));
      if (s != nullptr) s->hot = true;
    } else if (line.compare(0, kRequires.size(), kRequires) == 0 &&
               !line.empty() && line.back() == ')') {
      Symbol* s = symbol_with_body(table.symbols, body_after_line(code, starts, i));
      if (s != nullptr) {
        const std::string inner =
            line.substr(kRequires.size(), line.size() - kRequires.size() - 1);
        for (std::string& mutex : split_operands(inner)) {
          s->requires_mutexes.push_back(std::move(mutex));
        }
      }
    }
  }

  // Sibling-header annotations bind by declared name: a `// gridbw:hot`
  // above a declaration in x.hpp marks every same-named definition in x.cpp
  // (overloads share the marking — the conservative direction).
  std::vector<std::string> companion_hot;
  std::vector<std::pair<std::string, std::vector<std::string>>> companion_requires;
  for (std::size_t i = 0; i < file.companion_raw_lines.size(); ++i) {
    const std::string line = trim(file.companion_raw_lines[i]);
    if (line == kHot) {
      const std::string name =
          declared_name_after(file.companion_code_lines, i + 1);
      if (!name.empty()) companion_hot.push_back(name);
    } else if (line.compare(0, kRequires.size(), kRequires) == 0 &&
               !line.empty() && line.back() == ')') {
      const std::string name =
          declared_name_after(file.companion_code_lines, i + 1);
      const std::string inner =
          line.substr(kRequires.size(), line.size() - kRequires.size() - 1);
      if (!name.empty()) companion_requires.emplace_back(name, split_operands(inner));
    }
  }
  for (Symbol& symbol : table.symbols) {
    for (const std::string& name : companion_hot) {
      if (symbol.name == name) symbol.hot = true;
    }
    for (const auto& [name, mutexes] : companion_requires) {
      if (symbol.name != name) continue;
      for (const std::string& mutex : mutexes) {
        symbol.requires_mutexes.push_back(mutex);
      }
    }
  }

  collect_includes(file, &table.quoted_includes);
  collect_callable_names(code, &table.callable_names);
  collect_callable_names(file.companion_code, &table.callable_names);
  collect_virtual_methods(code, &table.virtual_methods);
  collect_virtual_methods(file.companion_code, &table.virtual_methods);
  sort_unique(&table.quoted_includes);
  sort_unique(&table.callable_names);
  sort_unique(&table.virtual_methods);
  return table;
}

}  // namespace gridbw::analyze
