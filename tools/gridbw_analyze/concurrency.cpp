// The concurrency-discipline check family, built on the scope model
// (scope.cpp): lock-order, guarded-by, cv-wait-predicate,
// lock-scope-hygiene, atomic-discipline.

#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(const std::string& text, std::size_t pos, const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

/// One mutex held over a byte interval — from a RAII lock site or from a
/// gridbw:requires(body runs with the mutex held by the caller) annotation.
struct Hold {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string mutex;
  const LockSite* site = nullptr;  // null for requires-derived holds
};

std::vector<Hold> hold_intervals(const ScopeInfo& info) {
  std::vector<Hold> holds;
  for (const LockSite& site : info.locks) {
    for (const std::string& mutex : site.mutexes) {
      holds.push_back({site.pos, site.release, mutex, &site});
    }
  }
  for (const RequiresSite& site : info.requires_held) {
    for (const std::string& mutex : site.mutexes) {
      holds.push_back({site.body_open, site.body_close, mutex, nullptr});
    }
  }
  return holds;
}

struct Ctx {
  const SourceFile& file;
  const std::string& code;
  const std::vector<std::size_t>& starts;
  std::vector<Finding>* out;

  void report(std::size_t pos, const char* check, std::string message) const {
    const int line = line_of(starts, pos);
    if (file.suppressed(line, check)) return;
    out->push_back(Finding{file.rel_path, line, check, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

void check_lock_order(const Ctx& ctx, const ScopeInfo& info,
                      const std::vector<Hold>& holds) {
  std::set<std::string> seen;  // pos|acquired|held — nested holds dedup
  for (const FunctionScope& fn : info.functions) {
    for (const LockSite& site : info.locks) {
      if (site.pos <= fn.open || site.pos >= fn.close) continue;
      for (const Hold& held : holds) {
        if (held.site == &site) continue;  // scoped_lock{a, b} is deadlock-free
        if (!(held.begin < site.pos && site.pos < held.end)) continue;
        for (const std::string& acquired : site.mutexes) {
          if (acquired == held.mutex) continue;
          const std::string key = std::to_string(site.pos) + "|" + acquired +
                                  "|" + held.mutex;
          if (!seen.insert(key).second) continue;

          bool sanctioned = false;
          const LockOrderContract* violated = nullptr;
          for (const LockOrderContract& c : info.contracts) {
            if (mutex_matches(acquired, c.second) &&
                mutex_matches(held.mutex, c.first)) {
              sanctioned = true;
              break;
            }
            if (mutex_matches(acquired, c.first) &&
                mutex_matches(held.mutex, c.second)) {
              violated = &c;
            }
          }
          if (sanctioned) continue;
          if (violated != nullptr) {
            ctx.report(site.pos, "lock-order",
                       "mutex '" + acquired + "' acquired while '" +
                           held.mutex +
                           "' is held — violates the declared contract "
                           "gridbw:lock-order(" +
                           violated->first + " < " + violated->second + ")");
          } else {
            ctx.report(site.pos, "lock-order",
                       "mutex '" + acquired + "' acquired while '" +
                           held.mutex +
                           "' is held with no gridbw:lock-order contract "
                           "covering the pair — declare the intended order");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

void check_guarded_by(const Ctx& ctx, const ScopeInfo& info,
                      const std::vector<Hold>& holds) {
  for (const GuardedField& field : info.guarded) {
    std::size_t pos = 0;
    while ((pos = ctx.code.find(field.name, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += field.name.size();
      if (!word_at(ctx.code, hit, field.name)) continue;
      const int line = line_of(ctx.starts, hit);
      if (line == field.decl_line) continue;  // the declaration itself
      bool held = false;
      for (const Hold& hold : holds) {
        if (hold.begin < hit && hit < hold.end &&
            mutex_matches(hold.mutex, field.mutex)) {
          held = true;
          break;
        }
      }
      if (!held) {
        ctx.report(hit, "guarded-by",
                   "field '" + field.name + "' is gridbw:guarded_by(" +
                       field.mutex + ") but is accessed without '" +
                       field.mutex +
                       "' held (scoped_lock/lock_guard/unique_lock, or a "
                       "gridbw:requires function)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// cv-wait-predicate
// ---------------------------------------------------------------------------

void check_cv_wait(const Ctx& ctx, const ScopeInfo& info) {
  for (const std::string& cv : info.cv_names) {
    std::size_t pos = 0;
    while ((pos = ctx.code.find(cv, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += cv.size();
      if (!word_at(ctx.code, hit, cv)) continue;
      std::size_t i = hit + cv.size();
      if (ctx.code.compare(i, 2, "->") == 0) {
        i += 2;
      } else if (i < ctx.code.size() && ctx.code[i] == '.') {
        i += 1;
      } else {
        continue;
      }
      std::size_t end = i;
      while (end < ctx.code.size() && is_ident(ctx.code[end])) ++end;
      const std::string member = ctx.code.substr(i, end - i);
      std::size_t need = 0;  // top-level commas the predicate overload needs
      if (member == "wait") {
        need = 1;
      } else if (member == "wait_for" || member == "wait_until") {
        need = 2;
      } else {
        continue;
      }
      const std::size_t open = skip_ws(ctx.code, end);
      if (open >= ctx.code.size() || ctx.code[open] != '(') continue;
      int depth = 0;
      std::size_t commas = 0;
      for (std::size_t j = open; j < ctx.code.size(); ++j) {
        const char c = ctx.code[j];
        if (c == '(' || c == '{' || c == '[') ++depth;
        if (c == ')' || c == '}' || c == ']') {
          --depth;
          if (depth == 0) break;
        }
        if (c == ',' && depth == 1) ++commas;
      }
      if (commas < need) {
        ctx.report(hit, "cv-wait-predicate",
                   "condition_variable " + member +
                       " without a predicate — spurious wakeups desynchronize "
                       "the protocol; use the predicate overload");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-scope-hygiene
// ---------------------------------------------------------------------------

void check_lock_hygiene(const Ctx& ctx, const std::vector<Hold>& holds) {
  struct Token {
    const char* token;
    bool word;
    const char* what;
  };
  static const Token kTokens[] = {
      {"throw", true, "throw"},
      {"std::cout", false, "stream I/O (std::cout)"},
      {"std::cerr", false, "stream I/O (std::cerr)"},
      {"printf", true, "printf I/O"},
      {"fprintf", true, "printf I/O"},
      {"fputs", true, "file I/O"},
      {"fwrite", true, "file I/O"},
      {"fopen", true, "file I/O"},
      {"ofstream", true, "file stream construction"},
      {"ifstream", true, "file stream construction"},
      {"->record(", false, "virtual sink call (TraceSink::record)"},
      {".submit(", false, "blocking pool submit"},
      {"->submit(", false, "blocking pool submit"},
      {".join(", false, "blocking join"},
      {"->join(", false, "blocking join"},
      {"sleep_for", true, "sleep"},
      {".wait()", false, "blocking wait"},
      {"->wait()", false, "blocking wait"},
  };
  std::set<std::size_t> reported;
  for (const Hold& hold : holds) {
    for (const Token& t : kTokens) {
      const std::string token = t.token;
      std::size_t pos = hold.begin;
      while ((pos = ctx.code.find(token, pos)) != std::string::npos &&
             pos < hold.end) {
        const std::size_t hit = pos;
        pos += token.size();
        if (t.word && !word_at(ctx.code, hit, token)) continue;
        if (!reported.insert(hit).second) continue;
        ctx.report(hit, "lock-scope-hygiene",
                   std::string{t.what} + " while '" + hold.mutex +
                       "' is held — critical sections stay compute-only; "
                       "move it outside the lock scope");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// atomic-discipline
// ---------------------------------------------------------------------------

void check_atomic_discipline(const Ctx& ctx) {
  // Shared mutable state is mutex-protected everywhere except the two
  // sanctioned lock-free designs: the per-thread counter shards and the
  // thread pool.
  const std::string& path = ctx.file.rel_path;
  const bool sanctioned =
      path == "src/obs/counters.hpp" || path == "src/obs/counters.cpp" ||
      path == "src/util/thread_pool.hpp" || path == "src/util/thread_pool.cpp";
  if (!sanctioned) {
    static const std::string kAtomic = "std::atomic";
    std::size_t pos = 0;
    while ((pos = ctx.code.find(kAtomic, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += kAtomic.size();
      if (hit > 0 && is_ident(ctx.code[hit - 1])) continue;
      ctx.report(hit, "atomic-discipline",
                 "raw std::atomic outside the sanctioned modules "
                 "(src/obs/counters, src/util/thread_pool) — use "
                 "CounterRegistry, a mutex, or justify with "
                 "GRIDBW-ALLOW(atomic-discipline)");
    }
  }
  // Non-default memory orders are a finding everywhere, sanctioned modules
  // included: relaxed/acquire/release reasoning must be written down.
  static const std::string kOrder = "memory_order";
  std::size_t pos = 0;
  while ((pos = ctx.code.find(kOrder, pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += kOrder.size();
    if (hit > 0 && is_ident(ctx.code[hit - 1])) continue;
    std::size_t i = hit + kOrder.size();
    std::string order;
    if (i < ctx.code.size() && ctx.code[i] == '_') {
      std::size_t end = i + 1;
      while (end < ctx.code.size() && is_ident(ctx.code[end])) ++end;
      order = ctx.code.substr(i + 1, end - i - 1);
    } else if (ctx.code.compare(i, 2, "::") == 0) {
      std::size_t end = i + 2;
      while (end < ctx.code.size() && is_ident(ctx.code[end])) ++end;
      order = ctx.code.substr(i + 2, end - i - 2);
    } else {
      continue;  // the plain std::memory_order type, no specific order
    }
    if (order.empty() || order == "seq_cst") continue;
    ctx.report(hit, "atomic-discipline",
               "non-default memory_order '" + order +
                   "' — seq_cst is the default; weaker orders need a "
                   "GRIDBW-ALLOW(atomic-discipline) justification");
  }
}

}  // namespace

void run_concurrency_checks(const SourceFile& file, const std::string& code,
                            const std::vector<std::size_t>& starts,
                            const ScopeInfo& scope, const Options& options,
                            std::vector<Finding>* out) {
  const auto enabled = [&](const char* id) {
    return options.checks.empty() || options.checks.count(id) != 0;
  };
  if (!enabled("lock-order") && !enabled("guarded-by") &&
      !enabled("cv-wait-predicate") && !enabled("lock-scope-hygiene") &&
      !enabled("atomic-discipline")) {
    return;
  }
  const Ctx ctx{file, code, starts, out};
  const std::vector<Hold> holds = hold_intervals(scope);
  if (enabled("lock-order")) check_lock_order(ctx, scope, holds);
  if (enabled("guarded-by")) check_guarded_by(ctx, scope, holds);
  if (enabled("cv-wait-predicate")) check_cv_wait(ctx, scope);
  if (enabled("lock-scope-hygiene")) check_lock_hygiene(ctx, holds);
  if (enabled("atomic-discipline")) check_atomic_discipline(ctx);
}

void run_concurrency_checks(const SourceFile& file, const std::string& code,
                            const std::vector<std::size_t>& starts,
                            const Options& options,
                            std::vector<Finding>* out) {
  const ScopeInfo scope = build_scope_info(file, code, starts);
  run_concurrency_checks(file, code, starts, scope, options, out);
}

}  // namespace gridbw::analyze
