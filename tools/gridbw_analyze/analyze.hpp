// gridbw_analyze: in-tree static analyzer for the gridbw reproduction.
//
// A deliberately small lexer/preprocessor-lite (no libclang): it strips
// comments and string literals while preserving line numbers, parses
// `#include` directives, and runs a fixed catalogue of domain checks the
// compiler and clang-tidy cannot express:
//
//   layering        #include edges must follow the module DAG documented in
//                   DESIGN.md §5f (core never includes heuristics, obs stays
//                   below core except the export layer, ...)
//   unordered-iter  iteration over std::unordered_map/unordered_set — order
//                   is unspecified, so anything that flows into traces,
//                   reports, or schedule decisions breaks byte-identity
//   wall-clock      real-time reads outside the experiment harness and the
//                   observability sinks (simulated time flows via TimePoint)
//   rng-locality    random engines constructed outside util/random
//   stepfunction-hot-path
//                   the std::map-backed reference StepFunction used outside
//                   its home files and the differential validator — hot
//                   paths use the flat core/timeline_profile.hpp
//   float-format    float formatting that bypasses the shortest-round-trip
//                   helpers (std::to_string on doubles, std::setprecision,
//                   raw printf floats inside the trace/export layer)
//   unit-safety     raw `double` parameters/members/returns in public
//                   headers whose names denote a dimensioned quantity
//                   (*_bps, *_bytes, *_sec, bandwidth, volume, ...)
//   hot-path        `throw`, allocation, or virtual-sink calls inside
//                   functions annotated `// gridbw:hot`
//
// Suppression: a `// GRIDBW-ALLOW(check-id): reason` comment on the finding
// line or the line directly above silences that one line for that check.
// A committed baseline file (check|path|trimmed-line) lets pre-existing
// findings land incrementally; `--fix-baseline` rewrites it.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

/// One diagnostic. `line` is 1-based. Orderable so reports are deterministic.
struct Finding {
  std::string path;   // repo-relative, '/'-separated
  int line = 0;
  std::string check;  // check id, e.g. "layering"
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.message < b.message;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.path == b.path && a.line == b.line && a.check == b.check &&
           a.message == b.message;
  }
};

/// A source file prepared for scanning: raw lines (for suppression comments
/// and baseline keys) plus code lines with comments/strings blanked out.
struct SourceFile {
  std::string rel_path;                 // relative to the scan root
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // same line count as raw_lines
  /// Stripped text of the sibling header (for x.cpp, x.hpp) when present:
  /// members declared there count for unordered-iter tracking here.
  std::string companion_code;

  /// True when `line` (1-based) carries or is directly preceded by a
  /// `GRIDBW-ALLOW(check)` comment.
  [[nodiscard]] bool suppressed(int line, const std::string& check) const;
};

/// Blanks comments and string/char literals, preserving the line structure.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& text);

/// Splits into lines (no trailing separators). An empty text is one empty line.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);

/// Builds a SourceFile from in-memory text.
[[nodiscard]] SourceFile make_source(std::string rel_path, const std::string& text);

// ---------------------------------------------------------------------------
// Check catalogue
// ---------------------------------------------------------------------------

struct CheckInfo {
  const char* id;
  const char* summary;
};

/// All check ids with one-line summaries, in catalogue order.
[[nodiscard]] const std::vector<CheckInfo>& check_catalogue();

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

/// Module of a src-relative path ("core/ledger.hpp" -> "core"). The
/// utilization export layer maps to "obs_export"; the umbrella gridbw.hpp
/// maps to "umbrella". Unknown directories return "" (reported separately).
[[nodiscard]] std::string module_of(const std::string& src_rel_path);

/// True when module `from` may include headers of module `to` (reflexive,
/// transitive closure of the CMake link graph).
[[nodiscard]] bool layering_allows(const std::string& from, const std::string& to);

/// The allowed include set of a module, for diagnostics ("" if unknown).
[[nodiscard]] std::string layering_allowed_list(const std::string& from);

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

struct Options {
  /// Check ids to run; empty = all.
  std::set<std::string> checks;
};

/// Runs every enabled check over one file. `src_rel_path` is the path
/// relative to the `src/` directory (used for module mapping and per-module
/// allowances); `file.rel_path` is the repo-relative path used in findings.
[[nodiscard]] std::vector<Finding> analyze_file(const SourceFile& file,
                                                const std::string& src_rel_path,
                                                const Options& options);

/// Result of a whole-tree scan: findings sorted deterministically, with the
/// parallel baseline key for each finding.
struct TreeReport {
  std::vector<Finding> findings;
  std::vector<std::string> keys;  // keys[i] is baseline_key(findings[i])
  std::size_t files_scanned = 0;
};

/// Scans `<root>/src` recursively (sorted order). Throws std::runtime_error
/// when the directory is missing.
[[nodiscard]] TreeReport analyze_tree(const std::string& root,
                                      const Options& options);

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Baseline key for a finding: "check|path|trimmed raw line text". Content-
/// based (not line-number-based) so unrelated edits do not invalidate it.
[[nodiscard]] std::string baseline_key(const Finding& finding,
                                       const SourceFile& file);

/// A parsed baseline: multiset of keys (the same key may appear N times).
using Baseline = std::map<std::string, int>;

/// Parses a baseline file body. Lines starting with '#' and blank lines are
/// ignored.
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Splits findings into (new, baselined) against `baseline`, consuming
/// entries; leftover baseline entries are returned in `stale`.
struct BaselineSplit {
  std::vector<Finding> fresh;
  std::vector<Finding> baselined;
  std::vector<std::string> stale;
};
[[nodiscard]] BaselineSplit apply_baseline(const std::vector<Finding>& findings,
                                           const std::vector<std::string>& keys,
                                           const Baseline& baseline);

/// Serializes findings as a baseline file body (sorted, with header).
[[nodiscard]] std::string render_baseline(const std::vector<std::string>& keys);

/// Renders findings as a JSON array (deterministic field order).
[[nodiscard]] std::string render_json(const std::vector<Finding>& findings);

}  // namespace gridbw::analyze
