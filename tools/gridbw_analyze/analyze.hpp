// gridbw_analyze: in-tree static analyzer for the gridbw reproduction.
//
// A deliberately small lexer/preprocessor-lite (no libclang): it strips
// comments and string literals while preserving line numbers, parses
// `#include` directives, and runs a fixed catalogue of domain checks the
// compiler and clang-tidy cannot express:
//
//   layering        #include edges must follow the module DAG documented in
//                   DESIGN.md §5f (core never includes heuristics, obs stays
//                   below core except the export layer, ...)
//   unordered-iter  iteration over std::unordered_map/unordered_set — order
//                   is unspecified, so anything that flows into traces,
//                   reports, or schedule decisions breaks byte-identity
//   wall-clock      real-time reads outside the experiment harness and the
//                   observability sinks (simulated time flows via TimePoint)
//   rng-locality    random engines constructed outside util/random
//   stepfunction-hot-path
//                   the std::map-backed reference StepFunction used outside
//                   its home files and the differential validator — hot
//                   paths use the flat core/timeline_profile.hpp
//   float-format    float formatting that bypasses the shortest-round-trip
//                   helpers (std::to_string on doubles, std::setprecision,
//                   raw printf floats inside the trace/export layer)
//   unit-safety     raw `double` parameters/members/returns in public
//                   headers whose names denote a dimensioned quantity
//                   (*_bps, *_bytes, *_sec, bandwidth, volume, ...)
//   hot-path        `throw`, allocation, or virtual-sink calls inside
//                   functions annotated `// gridbw:hot`
//   lock-order      mutex acquisition order inside a function must follow
//                   the file's declared gridbw:lock-order contracts, and
//                   nested acquisitions without a covering contract are
//                   findings too (the two-cell admission protocol)
//   guarded-by      fields annotated gridbw:guarded_by may only be touched
//                   in scopes where the named mutex is held via
//                   scoped_lock / lock_guard / unique_lock (or inside a
//                   function annotated gridbw:requires)
//   cv-wait-predicate
//                   every condition_variable wait uses the predicate
//                   overload — bare waits desynchronize on spurious wakeups
//   lock-scope-hygiene
//                   no throw, stream/printf I/O, virtual-sink ->record(
//                   call, or blocking submit/join/sleep while a lock is
//                   held — critical sections stay compute-only
//   atomic-discipline
//                   raw std::atomic outside the sanctioned modules
//                   (obs/counters, util/thread_pool), and every non-default
//                   memory_order argument, must carry a GRIDBW-ALLOW
//   hot-propagation (interprocedural, tree scans only) every function
//                   reachable over the call graph from a `// gridbw:hot`
//                   body must itself be hot-clean — no throw, allocation,
//                   dynamic_cast, sink ->record(, or lock acquisition —
//                   or carry its own gridbw:hot / GRIDBW-ALLOW; findings
//                   print the call chain from the hot root
//   requires-context
//                   (interprocedural) calls to gridbw:requires(mu)
//                   functions must come from a scope holding mu (RAII lock
//                   site) or from a function itself marked requires(mu)
//   hot-call-unresolved
//                   (interprocedural) calls from hot contexts through
//                   virtual methods or std::function values — sinks the
//                   graph cannot resolve — must be ALLOW-annotated
//
// Scan roots: src/ (all checks), tools/, bench/, and tests/ with per-root
// check profiles (see scan_roots() in baseline.cpp); directories named
// `fixtures` are excluded everywhere.
//
// Suppression: a `// GRIDBW-ALLOW(<check>): reason` comment on the finding
// line or the line directly above silences that one line for that check.
// An ALLOW naming a check id that is not in the catalogue is reported as
// stale (like a stale baseline entry). A committed baseline file
// (check|path|trimmed-line) lets pre-existing findings land incrementally;
// `--fix-baseline` rewrites it.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

/// One diagnostic. `line` is 1-based. Orderable so reports are deterministic.
struct Finding {
  std::string path;   // repo-relative, '/'-separated
  int line = 0;
  std::string check;  // check id, e.g. "layering"
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.message < b.message;
  }
  friend bool operator==(const Finding& a, const Finding& b) {
    return a.path == b.path && a.line == b.line && a.check == b.check &&
           a.message == b.message;
  }
};

/// A source file prepared for scanning: raw lines (for suppression comments
/// and baseline keys) plus code lines with comments/strings blanked out.
struct SourceFile {
  std::string rel_path;                 // relative to the scan root
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // same line count as raw_lines
  /// Stripped text of the sibling header (for x.cpp, x.hpp) when present:
  /// members declared there count for unordered-iter tracking here.
  std::string companion_code;
  /// The sibling header line by line, raw and stripped — annotations
  /// (gridbw:guarded_by, gridbw:lock-order) declared on header members
  /// bind in the .cpp as well.
  std::vector<std::string> companion_raw_lines;
  std::vector<std::string> companion_code_lines;

  /// True when `line` (1-based) carries or is directly preceded by a
  /// `GRIDBW-ALLOW(<check>)` comment.
  [[nodiscard]] bool suppressed(int line, const std::string& check) const;
};

/// Blanks comments and string/char literals, preserving the line structure.
[[nodiscard]] std::string strip_comments_and_strings(const std::string& text);

/// Splits into lines (no trailing separators). An empty text is one empty line.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& text);

/// Builds a SourceFile from in-memory text.
[[nodiscard]] SourceFile make_source(std::string rel_path, const std::string& text);

/// Attaches sibling-header text to `file` (companion_code + line vectors).
void attach_companion(SourceFile& file, const std::string& text);

/// GRIDBW-ALLOW comments whose check id is not in the catalogue, rendered
/// as "path:line: id". Reported like stale baseline entries (stderr,
/// non-failing): the suppression is dead weight and should be deleted.
[[nodiscard]] std::vector<std::string> stale_allows_in(const SourceFile& file);

// ---------------------------------------------------------------------------
// Check catalogue
// ---------------------------------------------------------------------------

struct CheckInfo {
  const char* id;
  const char* summary;
};

/// All check ids with one-line summaries, in catalogue order.
[[nodiscard]] const std::vector<CheckInfo>& check_catalogue();

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

/// Module of a src-relative path ("core/ledger.hpp" -> "core"). The
/// utilization export layer maps to "obs_export"; the umbrella gridbw.hpp
/// maps to "umbrella". Unknown directories return "" (reported separately).
[[nodiscard]] std::string module_of(const std::string& src_rel_path);

/// True when module `from` may include headers of module `to` (reflexive,
/// transitive closure of the CMake link graph).
[[nodiscard]] bool layering_allows(const std::string& from, const std::string& to);

/// The allowed include set of a module, for diagnostics ("" if unknown).
[[nodiscard]] std::string layering_allowed_list(const std::string& from);

// ---------------------------------------------------------------------------
// Scope model (scope.cpp)
// ---------------------------------------------------------------------------
//
// A brace/paren-tracking pass over the stripped code of one file: function
// bodies, lock acquisitions with their hold intervals, and the annotated
// locking contracts. Deliberately still lexical — no libclang — so the
// same heuristic spirit as the rest of the catalogue applies: names are
// matched textually and member accesses by suffix.

/// One lock acquisition site (scoped_lock / lock_guard / unique_lock
/// declaration, or a raw `expr.lock()` call).
struct LockSite {
  std::size_t pos = 0;        // byte offset of the acquisition in the code
  std::size_t release = 0;    // end of the hold: explicit unlock or scope end
  std::string var;            // lock object name ("" for raw .lock() calls)
  std::vector<std::string> mutexes;  // normalized mutex expressions
};

/// A function (or parameterized-lambda) body: offsets of its braces.
struct FunctionScope {
  std::size_t open = 0;
  std::size_t close = 0;
};

/// A `// gridbw:lock-order(first < second)` contract (file or companion).
struct LockOrderContract {
  std::string first;
  std::string second;
};

/// A field annotated `// gridbw:guarded_by(mutex)` on its declaration line.
struct GuardedField {
  std::string name;
  std::string mutex;
  int decl_line = 0;  // 1-based line in the declaring file; 0 = companion
};

/// A `// gridbw:requires(mu, ...)` annotation: the next function body runs
/// with the named mutexes held by the caller.
struct RequiresSite {
  std::size_t body_open = 0;
  std::size_t body_close = 0;
  std::vector<std::string> mutexes;
};

struct ScopeInfo {
  std::vector<FunctionScope> functions;  // outermost function bodies only
  std::vector<LockSite> locks;
  std::vector<LockOrderContract> contracts;
  std::vector<GuardedField> guarded;
  std::vector<RequiresSite> requires_held;
  std::vector<std::string> cv_names;  // condition_variable declarations
};

/// Builds the scope model for one file. `code` is the joined stripped text
/// and `starts` its line-start offsets (as produced inside analyze_file).
[[nodiscard]] ScopeInfo build_scope_info(const SourceFile& file,
                                         const std::string& code,
                                         const std::vector<std::size_t>& starts);

/// True when held mutex expression `held` satisfies a contract/annotation
/// naming `name`: exact match, or the member suffix after the last `.` /
/// `->` matches (`impl_->ingest_mu` satisfies `ingest_mu`).
[[nodiscard]] bool mutex_matches(const std::string& held, const std::string& name);

struct Options;  // forward declaration (defined below)

/// Runs the concurrency-discipline family (lock-order, guarded-by,
/// cv-wait-predicate, lock-scope-hygiene, atomic-discipline) over one file.
/// Called from analyze_file; `code` is the joined stripped text and `starts`
/// its line-start offsets. This overload builds the scope model itself.
void run_concurrency_checks(const SourceFile& file, const std::string& code,
                            const std::vector<std::size_t>& starts,
                            const Options& options, std::vector<Finding>* out);

/// Same, with a precomputed scope model (the two-phase tree scan builds it
/// once per file and reuses it for the symbol index and the call graph).
void run_concurrency_checks(const SourceFile& file, const std::string& code,
                            const std::vector<std::size_t>& starts,
                            const ScopeInfo& scope, const Options& options,
                            std::vector<Finding>* out);

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

struct Options {
  /// Check ids to run; empty = all.
  std::set<std::string> checks;
  /// Worker threads for the tree scan; 0 = hardware concurrency, 1 = serial.
  /// Output is deterministic (sorted findings) for every value.
  std::size_t threads = 0;
};

/// One scan root under the repository and the check ids it does not run
/// (e.g. wall-clock is relaxed in bench/, layering outside src/).
struct ScanRoot {
  const char* dir;
  std::set<std::string> skip;
};

/// The scanned roots in order: src, tools, bench, tests.
[[nodiscard]] const std::vector<ScanRoot>& scan_roots();

/// Runs every enabled check over one file. `src_rel_path` is the path
/// relative to the scan root (for src/ it is used for module mapping and
/// per-module allowances); `file.rel_path` is the repo-relative path used
/// in findings and the atomic-discipline allowlist.
[[nodiscard]] std::vector<Finding> analyze_file(const SourceFile& file,
                                                const std::string& src_rel_path,
                                                const Options& options);

/// The intraprocedural half of analyze_file with the per-file artifacts
/// (joined stripped code, line starts, scope model) precomputed — the
/// phase-2 worker of the tree scan, which builds them once in phase 1 and
/// reuses them for the symbol index and the call graph. The findings come
/// back sorted. The three interprocedural checks (hot-propagation,
/// requires-context, hot-call-unresolved) only run in tree scans, where the
/// global call graph exists.
[[nodiscard]] std::vector<Finding> analyze_prepared(
    const SourceFile& file, const std::string& src_rel_path,
    const std::string& code, const std::vector<std::size_t>& starts,
    const ScopeInfo& scope, const Options& options);

/// Result of a whole-tree scan: findings sorted deterministically, with the
/// parallel baseline key for each finding.
struct TreeReport {
  std::vector<Finding> findings;
  std::vector<std::string> keys;  // keys[i] is baseline_key(findings[i])
  std::size_t files_scanned = 0;
  /// GRIDBW-ALLOW comments naming unknown check ids ("path:line: id").
  std::vector<std::string> stale_allows;
  /// Call-graph statistics (informational, printed to stderr by the CLI):
  /// resolved counts candidate edges, unresolved counts call sites the
  /// suffix matcher could not bind to any indexed symbol (non-fatal by
  /// design — a lexical graph under-approximates).
  std::size_t call_edges_resolved = 0;
  std::size_t call_edges_unresolved = 0;
};

/// One file handed to analyze_loaded: repo-relative path, scan-root
/// coordinates, raw text, and the sibling header's text when one exists.
struct LoadedFile {
  std::string rel;       // repo-relative, '/'-separated
  std::string root_rel;  // relative to its scan root
  std::size_t root_index = 0;  // index into scan_roots()
  std::string text;
  std::string companion;       // sibling .hpp text (for .cpp files)
  bool has_companion = false;
};

/// The two-phase scan over an in-memory tree (analyze_tree loads from disk
/// and delegates here; tests can hand in synthetic trees). `files` must be
/// in final report order (sorted path order within each root, roots in
/// scan_roots() order). Phase 1 builds per-file code/scope/symbol/call
/// tables in parallel; the interprocedural checks then run serially over
/// the merged tables; phase 2 runs the intraprocedural catalogue in
/// parallel and merges findings back in `files` order — byte-identical
/// output for any thread count.
[[nodiscard]] TreeReport analyze_loaded(const std::vector<LoadedFile>& files,
                                        const Options& options);

/// Scans every `scan_roots()` directory under `root` recursively (files in
/// sorted path order; `src/` is mandatory, the rest optional; `fixtures`
/// directories are skipped). The per-file work fans out over a
/// gridbw::ThreadPool (`options.threads`); findings are merged back in
/// path order, so the report is byte-identical for any thread count.
/// Throws std::runtime_error when `<root>/src` is missing.
[[nodiscard]] TreeReport analyze_tree(const std::string& root,
                                      const Options& options);

/// Writes `body` to `path` via a temporary file in the same directory and an
/// atomic rename, so readers (and interrupted runs) never observe a
/// truncated file. Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& body);

/// The CLI usage text (lib-level so tests can pin it).
[[nodiscard]] const char* usage_text();

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

/// Baseline key for a finding: "check|path|trimmed raw line text". Content-
/// based (not line-number-based) so unrelated edits do not invalidate it.
[[nodiscard]] std::string baseline_key(const Finding& finding,
                                       const SourceFile& file);

/// A parsed baseline: multiset of keys (the same key may appear N times).
using Baseline = std::map<std::string, int>;

/// Parses a baseline file body. Lines starting with '#' and blank lines are
/// ignored.
[[nodiscard]] Baseline parse_baseline(const std::string& text);

/// Splits findings into (new, baselined) against `baseline`, consuming
/// entries; leftover baseline entries are returned in `stale`.
struct BaselineSplit {
  std::vector<Finding> fresh;
  std::vector<Finding> baselined;
  std::vector<std::string> stale;
};
[[nodiscard]] BaselineSplit apply_baseline(const std::vector<Finding>& findings,
                                           const std::vector<std::string>& keys,
                                           const Baseline& baseline);

/// Serializes findings as a baseline file body (sorted, with header).
[[nodiscard]] std::string render_baseline(const std::vector<std::string>& keys);

/// Renders findings as a JSON array (deterministic field order).
[[nodiscard]] std::string render_json(const std::vector<Finding>& findings);

}  // namespace gridbw::analyze
