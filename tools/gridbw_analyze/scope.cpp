// Scope model: a brace/paren-tracking pass over stripped source. Matches
// every brace pair, classifies the scope it opens (function body, control
// statement, plain block), extracts RAII lock acquisitions with their hold
// intervals, and parses the gridbw locking annotations. Still lexical — the
// same heuristic spirit as the rest of the catalogue, no libclang.

#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(const std::string& text, std::size_t pos, const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// The expression with every whitespace character removed — lock arguments
/// and annotation operands normalize to the same spelling even when the
/// declaration wraps across lines.
std::string strip_spaces(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

enum class ScopeKind { kFunction, kControl, kPlain };

/// Classifies the scope opened by the '{' at `open` by scanning backwards.
/// The skip set covers what a function-header tail is made of (identifiers,
/// whitespace, template angles, qualifiers, ctor-init-list commas); the
/// first structural character decides:
///   ')'  → match it to its '(' and read the word before: a control keyword
///          gives a control scope, a lambda capture ']' a transparent plain
///          scope, anything else a function body;
///   else → plain scope (class/namespace body, initializer list, ...).
ScopeKind classify_scope(const std::string& code, std::size_t open) {
  std::size_t i = open;
  while (i > 0) {
    const char c = code[i - 1];
    const bool skip = is_ident(c) || c == ' ' || c == '\t' || c == '\n' ||
                      c == ':' || c == '<' || c == '>' || c == ',' ||
                      c == '*' || c == '&' || c == '-';
    if (!skip) break;
    --i;
  }
  if (i == 0 || code[i - 1] != ')') return ScopeKind::kPlain;
  int depth = 0;
  std::size_t j = i - 1;
  while (true) {
    const char c = code[j];
    if (c == ')') ++depth;
    if (c == '(') {
      --depth;
      if (depth == 0) break;
    }
    if (j == 0) return ScopeKind::kPlain;
    --j;
  }
  std::size_t k = j;
  while (k > 0 && std::isspace(static_cast<unsigned char>(code[k - 1])) != 0) {
    --k;
  }
  if (k == 0) return ScopeKind::kPlain;
  if (code[k - 1] == ']') return ScopeKind::kPlain;  // lambda: transparent
  std::size_t b = k;
  while (b > 0 && is_ident(code[b - 1])) --b;
  const std::string word = code.substr(b, k - b);
  if (word == "if" || word == "for" || word == "while" || word == "switch" ||
      word == "catch" || word == "constexpr") {  // `if constexpr (...)`
    return ScopeKind::kControl;
  }
  if (word.empty()) return ScopeKind::kPlain;
  return ScopeKind::kFunction;
}

struct BracePair {
  std::size_t open = 0;
  std::size_t close = 0;
  ScopeKind kind = ScopeKind::kPlain;
  bool outermost_function = false;
};

std::vector<BracePair> match_braces(const std::string& code) {
  struct OpenScope {
    std::size_t open;
    ScopeKind kind;
    int function_depth_below;
  };
  std::vector<BracePair> pairs;
  std::vector<OpenScope> stack;
  int function_depth = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '{') {
      const ScopeKind kind = classify_scope(code, i);
      stack.push_back({i, kind, function_depth});
      if (kind == ScopeKind::kFunction) ++function_depth;
    } else if (c == '}') {
      if (stack.empty()) continue;  // unbalanced — tolerate, macros exist
      const OpenScope top = stack.back();
      stack.pop_back();
      if (top.kind == ScopeKind::kFunction) --function_depth;
      pairs.push_back({top.open, i, top.kind,
                       top.kind == ScopeKind::kFunction &&
                           top.function_depth_below == 0});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const BracePair& a, const BracePair& b) { return a.open < b.open; });
  return pairs;
}

/// The closing brace of the innermost scope containing `pos` (code end when
/// the position is at file scope).
std::size_t enclosing_scope_end(const std::vector<BracePair>& pairs,
                                std::size_t pos, std::size_t code_size) {
  std::size_t end = code_size;
  for (const BracePair& p : pairs) {
    if (p.open < pos && pos < p.close) end = std::min(end, p.close);
  }
  return end;
}

void collect_lock_sites(const std::string& code,
                        const std::vector<BracePair>& pairs,
                        std::vector<LockSite>* out) {
  for (const char* raii : {"scoped_lock", "lock_guard", "unique_lock",
                           "shared_lock"}) {
    const std::string token = raii;
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += token.size();
      if (!word_at(code, hit, token)) continue;
      std::size_t i = hit + token.size();
      i = skip_ws(code, i);
      if (i < code.size() && code[i] == '<') {  // template argument list
        int depth = 0;
        while (i < code.size()) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>') {
            --depth;
            if (depth == 0) {
              ++i;
              break;
            }
          }
          ++i;
        }
      }
      i = skip_ws(code, i);
      std::size_t name_end = i;
      while (name_end < code.size() && is_ident(code[name_end])) ++name_end;
      if (name_end == i) continue;  // a type mention, not a declaration
      LockSite site;
      site.pos = hit;
      site.var = code.substr(i, name_end - i);
      i = skip_ws(code, name_end);
      if (i >= code.size() || (code[i] != '(' && code[i] != '{')) continue;

      // Constructor arguments, split on top-level commas.
      std::vector<std::string> args;
      std::string current;
      int depth = 0;
      bool closed = false;
      std::size_t j = i;
      for (; j < code.size(); ++j) {
        const char c = code[j];
        if (c == '(' || c == '{' || c == '[') {
          ++depth;
          if (depth == 1) continue;  // the opener itself
        } else if (c == ')' || c == '}' || c == ']') {
          --depth;
          if (depth == 0) {
            closed = true;
            break;
          }
        } else if (c == ',' && depth == 1) {
          args.push_back(strip_spaces(current));
          current.clear();
          continue;
        }
        current.push_back(c);
      }
      if (!closed) continue;
      if (!strip_spaces(current).empty()) args.push_back(strip_spaces(current));

      bool deferred = false;
      for (const std::string& arg : args) {
        if (arg.find("defer_lock") != std::string::npos) deferred = true;
        if (arg.find("adopt_lock") != std::string::npos) continue;
        if (arg.find("try_to_lock") != std::string::npos) continue;
        if (!arg.empty()) site.mutexes.push_back(arg);
      }
      // A deferred lock is acquired later (std::lock / .lock()); tracking
      // where would need dataflow, so the site is conservatively skipped.
      if (deferred || site.mutexes.empty()) continue;

      site.release = enclosing_scope_end(pairs, hit, code.size());
      // An explicit var.unlock() ends the hold early.
      std::size_t u = j;
      while ((u = code.find(site.var, u)) != std::string::npos &&
             u < site.release) {
        const std::size_t var_hit = u;
        u += site.var.size();
        if (!word_at(code, var_hit, site.var)) continue;
        const std::size_t after = skip_ws(code, var_hit + site.var.size());
        if (code.compare(after, 7, ".unlock") == 0) {
          site.release = var_hit;
          break;
        }
      }
      out->push_back(site);
    }
  }
  std::sort(out->begin(), out->end(),
            [](const LockSite& a, const LockSite& b) { return a.pos < b.pos; });
}

std::vector<std::string> split_operands(const std::string& inner) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : inner) {
    if (c == ',') {
      if (!strip_spaces(current).empty()) parts.push_back(strip_spaces(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!strip_spaces(current).empty()) parts.push_back(strip_spaces(current));
  return parts;
}

/// Parses the locking annotations out of one line set. `code`/`starts` are
/// empty for the companion header: gridbw:requires binds a function body in
/// the file being scanned, so it is file-local by construction.
void parse_annotations(const std::vector<std::string>& raw_lines,
                       const std::vector<std::string>& code_lines,
                       bool companion, const std::string& code,
                       const std::vector<std::size_t>& starts,
                       ScopeInfo* info) {
  static const std::string kOrder = "// gridbw:lock-order(";
  static const std::string kRequires = "// gridbw:requires(";
  static const std::string kGuard = "gridbw:guarded_by(";

  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string line = trim(raw_lines[i]);

    // Contract and requires annotations are standalone comment lines, so
    // prose that merely mentions the grammar never declares anything.
    if (line.compare(0, kOrder.size(), kOrder) == 0 && line.back() == ')') {
      const std::string inner =
          line.substr(kOrder.size(), line.size() - kOrder.size() - 1);
      const std::size_t lt = inner.find('<');
      if (lt == std::string::npos) continue;
      LockOrderContract contract;
      contract.first = strip_spaces(inner.substr(0, lt));
      contract.second = strip_spaces(inner.substr(lt + 1));
      if (!contract.first.empty() && !contract.second.empty()) {
        info->contracts.push_back(contract);
      }
      continue;
    }

    if (!companion && line.compare(0, kRequires.size(), kRequires) == 0 &&
        line.back() == ')') {
      const std::string inner =
          line.substr(kRequires.size(), line.size() - kRequires.size() - 1);
      RequiresSite site;
      site.mutexes = split_operands(inner);
      if (site.mutexes.empty()) continue;
      const std::size_t from =
          i + 1 < starts.size() ? starts[i + 1] : code.size();
      const std::size_t open = code.find('{', from);
      if (open == std::string::npos) continue;
      int depth = 0;
      std::size_t close = open;
      while (close < code.size()) {
        if (code[close] == '{') ++depth;
        if (code[close] == '}') {
          --depth;
          if (depth == 0) break;
        }
        ++close;
      }
      site.body_open = open;
      site.body_close = close;
      info->requires_held.push_back(site);
      continue;
    }

    // guarded_by trails the field declaration on its own line.
    const std::size_t g = raw_lines[i].find(kGuard);
    if (g != std::string::npos) {
      const std::size_t slashes = raw_lines[i].find("//");
      const std::size_t close = raw_lines[i].find(')', g);
      if (slashes == std::string::npos || slashes > g ||
          close == std::string::npos) {
        continue;
      }
      const std::string mutex = strip_spaces(
          raw_lines[i].substr(g + kGuard.size(), close - g - kGuard.size()));
      if (mutex.empty()) continue;
      // Field name: the last identifier before the declarator's terminator
      // (';', '=', or a brace initializer) in the stripped code line.
      const std::string& decl = code_lines[i];
      std::size_t end = decl.find_first_of(";={");
      if (end == std::string::npos) end = decl.size();
      while (end > 0 && !is_ident(decl[end - 1])) --end;
      std::size_t begin = end;
      while (begin > 0 && is_ident(decl[begin - 1])) --begin;
      if (end == begin) continue;
      info->guarded.push_back({decl.substr(begin, end - begin), mutex,
                               companion ? 0 : static_cast<int>(i) + 1});
    }
  }
}

void collect_cv_names(const std::string& code, std::vector<std::string>* out) {
  static const std::string kToken = "condition_variable";
  std::size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += kToken.size();
    if (hit > 0 && is_ident(code[hit - 1])) continue;
    std::size_t i = hit + kToken.size();
    if (code.compare(i, 4, "_any") == 0) i += 4;
    if (i < code.size() && is_ident(code[i])) continue;  // other identifier
    i = skip_ws(code, i);
    std::size_t end = i;
    while (end < code.size() && is_ident(code[end])) ++end;
    if (end > i) out->push_back(code.substr(i, end - i));
  }
}

}  // namespace

bool mutex_matches(const std::string& held, const std::string& name) {
  if (held == name) return true;
  if (held.size() <= name.size()) return false;
  if (held.compare(held.size() - name.size(), name.size(), name) != 0) {
    return false;
  }
  const char before = held[held.size() - name.size() - 1];
  return before == '.' || before == '>';  // member access: `.name` / `->name`
}

ScopeInfo build_scope_info(const SourceFile& file, const std::string& code,
                           const std::vector<std::size_t>& starts) {
  ScopeInfo info;
  const std::vector<BracePair> pairs = match_braces(code);
  for (const BracePair& pair : pairs) {
    if (pair.outermost_function) {
      info.functions.push_back({pair.open, pair.close});
    }
  }
  collect_lock_sites(code, pairs, &info.locks);
  parse_annotations(file.raw_lines, file.code_lines, /*companion=*/false, code,
                    starts, &info);
  parse_annotations(file.companion_raw_lines, file.companion_code_lines,
                    /*companion=*/true, "", {}, &info);
  collect_cv_names(code, &info.cv_names);
  collect_cv_names(file.companion_code, &info.cv_names);
  std::sort(info.cv_names.begin(), info.cv_names.end());
  info.cv_names.erase(std::unique(info.cv_names.begin(), info.cv_names.end()),
                      info.cv_names.end());
  return info;
}

}  // namespace gridbw::analyze
