// Fixture: side effects inside critical sections.
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace fixture {

struct Section {
  std::mutex mu;
  int value{0};

  void good() {
    std::scoped_lock lock{mu};
    value += 1;
  }

  void bad_io() {
    std::scoped_lock lock{mu};
    std::cout << value;  // finding: stream I/O under lock
  }

  void bad_throw() {
    std::scoped_lock lock{mu};
    if (value < 0) throw std::runtime_error{"negative"};  // finding
    value += 1;
  }

  void good_after_unlock() {
    std::unique_lock lock{mu};
    value += 1;
    lock.unlock();
    std::cout << value;  // fine: the lock was released above
  }

  void allowed() {
    std::scoped_lock lock{mu};
    // GRIDBW-ALLOW(lock-scope-hygiene): fixture-only suppression demo
    std::cerr << value;
  }
};

}  // namespace fixture
