// Fixture: iteration over unordered containers vs. order-safe lookups.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::unordered_map<std::uint64_t, double> loads;
std::unordered_set<std::uint64_t> members;

double bad_range_for() {
  double total = 0.0;
  for (const auto& [id, load] : loads) total += load + static_cast<double>(id);
  return total;
}

double bad_iterator_walk() {
  double total = 0.0;
  for (auto it = loads.begin(); it != loads.end(); ++it) total += it->second;
  return total;
}

// A commutative reduction may opt out, with a reason.
std::size_t allowed_reduction() {
  std::size_t n = 0;
  // GRIDBW-ALLOW(unordered-iter): counting elements is order-independent
  for (const auto& id : members) n += id != 0 ? 1u : 0u;
  return n;
}

// Point lookups never depend on iteration order.
bool ok_lookup(std::uint64_t id) { return members.count(id) != 0; }

double ok_sorted_snapshot() {
  std::vector<std::uint64_t> ids;
  ids.reserve(members.size());
  // GRIDBW-ALLOW(unordered-iter): snapshot is sorted before use below
  for (std::uint64_t id : members) ids.push_back(id);
  // std::sort(ids.begin(), ids.end()) would run here.
  return static_cast<double>(ids.size());
}

}  // namespace fixture
