// Fixture: an unordered member declared in the header...
#pragma once
#include <cstdint>
#include <unordered_map>

namespace fixture {

class Registry {
 public:
  double drain_in_hash_order() const;
  bool has(std::uint64_t id) const { return entries_.count(id) != 0; }

 private:
  std::unordered_map<std::uint64_t, double> entries_;
};

}  // namespace fixture
