// ...is still tracked when the .cpp iterates it.
#include "core/member.hpp"

namespace fixture {

double Registry::drain_in_hash_order() const {
  double total = 0.0;
  for (const auto& [id, v] : entries_) total += v + static_cast<double>(id);
  return total;
}

}  // namespace fixture
