// Fixture: the bench/ profile relaxes wall-clock — benchmarks time the
// machine by design.
#include <chrono>

namespace fixture {

long bench_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // fine here
}

}  // namespace fixture
