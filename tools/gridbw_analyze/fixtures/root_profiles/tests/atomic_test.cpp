// Fixture: the tests/ profile relaxes atomic-discipline — stress tests
// build raw atomics to hammer the pool.
#include <atomic>

namespace fixture {

std::atomic<int> probes{0};  // fine here

void hammer() { probes.fetch_add(1); }

}  // namespace fixture
