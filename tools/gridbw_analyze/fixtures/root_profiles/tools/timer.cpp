// Fixture: the tools/ profile keeps wall-clock and atomic-discipline on
// (layering and unit-safety are the checks relaxed there).
#include <atomic>
#include <chrono>

namespace fixture {

std::atomic<int> tool_state{0};  // finding: atomic-discipline applies in tools/

long tool_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // finding
}

}  // namespace fixture
