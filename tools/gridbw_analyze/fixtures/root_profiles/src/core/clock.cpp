// Fixture: wall-clock reads are findings in src/ proper.
#include <chrono>

namespace fixture {

long src_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // finding
}

}  // namespace fixture
