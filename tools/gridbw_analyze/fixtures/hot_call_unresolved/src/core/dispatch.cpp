// Fixture: calls from hot contexts through sinks the call graph cannot
// resolve. A virtual method and a std::function value are findings unless
// ALLOW'd; the same calls from cold code are fine.
#include <functional>

namespace fixture {

struct Probe {
  virtual ~Probe() = default;
  virtual int absorb(int sample) = 0;
};

std::function<int(int)> transform;

// gridbw:hot
int hot_virtual(Probe* probe, int n) { return probe->absorb(n); }

// gridbw:hot
int hot_pointer(int n) { return transform(n); }

// gridbw:hot
int hot_allowed(Probe* probe, int n) {
  // GRIDBW-ALLOW(hot-call-unresolved): devirtualized in release builds
  return probe->absorb(n);
}

int cold_virtual(Probe* probe, int n) { return probe->absorb(n); }

}  // namespace fixture
