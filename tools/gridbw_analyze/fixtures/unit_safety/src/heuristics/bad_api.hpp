// Fixture: dimensioned raw doubles in a public header.
#pragma once

namespace fixture {

struct Options {
  double peak_bps{0.0};          // finding: bandwidth as raw double
  double transfer_bytes{0.0};    // finding: volume as raw double
  double deadline_sec{0.0};      // finding: time as raw double
  double accept_fraction{1.0};   // dimensionless knob — fine
  double tune_factor{0.5};       // dimensionless knob — fine
  double window_sec_legacy{0.0};  // GRIDBW-ALLOW(unit-safety): migration shim
};

double capacity_bps();           // finding: dimensioned return
double jain_ratio();             // dimensionless return — fine

void set_rate(double rate_bps);  // finding: dimensioned parameter

}  // namespace fixture
