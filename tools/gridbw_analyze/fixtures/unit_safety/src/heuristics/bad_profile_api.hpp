// Fixture: profile-step views exposing dimensioned raw doubles.
#pragma once

namespace fixture {

struct ProfileStep {
  double from_seconds{0.0};      // finding: time as raw double
  double step_rate_bps{0.0};     // finding: bandwidth as raw double
  double carried_fraction{0.0};  // dimensionless — fine
};

double reshape_interval_sec();  // finding: dimensioned return

void set_floor(double floor_rate_bps);  // finding: dimensioned parameter

}  // namespace fixture
