// Fixture: raw doubles in a .cpp are implementation detail, not API —
// profile internals legitimately traffic in bps doubles.
namespace fixture {

double accumulate_bps(double load_bps, double add_bps) {
  return load_bps + add_bps;
}

}  // namespace fixture
