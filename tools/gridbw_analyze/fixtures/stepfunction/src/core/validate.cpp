// Fixture: the differential validator (kReference engine) is allowed too.
#include "core/step_function.hpp"

namespace fixture {

bool validate_against_reference() {
  StepFunction reference;
  reference.add(1, 2.5);
  return true;
}

}  // namespace fixture
