// Fixture: the reference implementation's own header may name StepFunction.
#pragma once
#include <map>

namespace fixture {

class StepFunction {
 public:
  void add(long t, double delta) { points_[t] += delta; }

 private:
  std::map<long, double> points_;
};

}  // namespace fixture
