// Fixture: StepFunction leaking into a scheduler. Comment mentions are fine.
#include "core/step_function.hpp"

namespace fixture {

double slow_plan() {
  fixture::StepFunction profile;
  profile.add(4, 1.0);
  // GRIDBW-ALLOW(stepfunction-hot-path): offline report path, not hot
  fixture::StepFunction tolerated;
  tolerated.add(5, 2.0);
  return 0.0;
}

}  // namespace fixture
