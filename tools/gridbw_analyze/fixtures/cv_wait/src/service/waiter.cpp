// Fixture: condition_variable waits with and without a predicate.
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace fixture {

struct Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool ready{false};

  void good() {
    std::unique_lock lock{mu};
    cv.wait(lock, [this] { return ready; });
  }

  void good_timed() {
    std::unique_lock lock{mu};
    cv.wait_for(lock, std::chrono::seconds{1}, [this] { return ready; });
  }

  void bad() {
    std::unique_lock lock{mu};
    cv.wait(lock);  // finding: bare wait
  }

  void bad_timed() {
    std::unique_lock lock{mu};
    cv.wait_for(lock, std::chrono::seconds{1});  // finding: no predicate
  }

  void allowed() {
    std::unique_lock lock{mu};
    // GRIDBW-ALLOW(cv-wait-predicate): fixture-only suppression demo
    cv.wait(lock);
  }
};

}  // namespace fixture
