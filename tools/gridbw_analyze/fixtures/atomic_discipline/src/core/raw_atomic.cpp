// Fixture: raw atomics outside the sanctioned modules, weak memory orders.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};  // finding: raw atomic outside counters/pool

int weak_read() {
  return counter.load(std::memory_order_relaxed);  // finding: weak order
}

int default_read() {
  return counter.load();  // seq_cst default: no order finding
}

void allowed() {
  // GRIDBW-ALLOW(atomic-discipline): fixture-only suppression demo
  static std::atomic<int> local{0};
  local.store(1);
}

}  // namespace fixture
