// Fixture: src/obs/counters.cpp is a sanctioned lock-free module — raw
// atomics are fine here, but weak memory orders still need an ALLOW.
#include <atomic>

namespace fixture {

std::atomic<int> sanctioned{0};  // no finding: sanctioned module

int read() { return sanctioned.load(); }

int weak_read() {
  return sanctioned.load(std::memory_order_acquire);  // finding: weak order
}

}  // namespace fixture
