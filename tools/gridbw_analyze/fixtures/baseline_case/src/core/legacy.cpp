// Fixture: one finding is grandfathered in the committed baseline, the
// other is new and must still fail the scan.
#include <random>

namespace fixture {

int legacy_engine() {
  std::mt19937 old_gen{1};  // baselined: listed in baseline.txt
  return static_cast<int>(old_gen());
}

int new_engine() {
  std::mt19937 new_gen{2};  // NOT baselined: a fresh finding
  return static_cast<int>(new_gen());
}

}  // namespace fixture
