// Fixture: gridbw:hot functions must not throw, allocate, or virtually
// dispatch into a sink; unannotated functions may do what they like.
#include <memory>
#include <stdexcept>

namespace fixture {

struct Sink {
  virtual ~Sink() = default;
  virtual void record(int event) = 0;
};

// gridbw:hot
int bad_hot(int a, Sink* sink) {
  if (a < 0) throw std::invalid_argument{"negative"};
  auto owned = std::make_unique<int>(a);
  int* raw = new int{*owned};
  sink->record(*raw);
  delete raw;
  return a;
}

// gridbw:hot
int ok_hot(int a, int b) {
  int best = a > b ? a : b;
  return best + a;
}

// gridbw:hot
int allowed_hot(int a) {
  // GRIDBW-ALLOW(hot-path): cold error branch, measured negligible
  if (a < 0) throw std::invalid_argument{"negative"};
  return a;
}

int unannotated(int a) {
  if (a < 0) throw std::invalid_argument{"negative"};
  return *std::make_unique<int>(a);
}

}  // namespace fixture
