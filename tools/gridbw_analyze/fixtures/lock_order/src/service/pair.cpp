// Fixture: nested mutex acquisitions against a declared lock-order contract.
#include <mutex>

namespace fixture {

struct Engine {
  std::mutex a;
  std::mutex b;
  std::mutex c;

  // gridbw:lock-order(a < b)

  void good() {
    std::scoped_lock la{a};
    std::scoped_lock lb{b};  // sanctioned: matches the declared order
    (void)lb;
  }

  void inverted() {
    std::scoped_lock lb{b};
    std::scoped_lock la{a};  // violates a < b
    (void)la;
  }

  void undeclared() {
    std::scoped_lock la{a};
    std::scoped_lock lc{c};  // no contract covers the (a, c) pair
    (void)lc;
  }

  void allowed() {
    std::scoped_lock lb{b};
    // GRIDBW-ALLOW(lock-order): fixture-only suppression demo
    std::scoped_lock la{a};
    (void)la;
  }
};

}  // namespace fixture
