// Fixture: float formatting that bypasses the round-trip helpers.
#include <iomanip>
#include <sstream>
#include <string>

namespace fixture {

std::string bad_to_string(double rate) { return std::to_string(rate); }

std::string bad_to_string_literal() { return std::to_string(3.25); }

std::string bad_setprecision(double v) {
  std::ostringstream out;
  out << std::setprecision(9) << v;
  return out.str();
}

// Casting to an integral type makes the text exact — not a finding.
std::string ok_integral_cast(double rate) {
  return std::to_string(static_cast<int>(rate));
}

std::string ok_integer(long count) { return std::to_string(count); }

std::string allowed_to_string(double v) {
  return std::to_string(v);  // GRIDBW-ALLOW(float-format): fixture-only demo
}

}  // namespace fixture
