// Fixture: inside the trace/export layer, raw printf float conversions are
// how byte-identity drifts; integers and \u escapes are fine.
#include <array>
#include <cstdio>
#include <string>

namespace fixture {

std::string bad_printf_float(double bw) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6f", bw);
  return std::string{buf.data()};
}

std::string ok_printf_int(unsigned c) {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
  return std::string{buf.data()};
}

}  // namespace fixture
