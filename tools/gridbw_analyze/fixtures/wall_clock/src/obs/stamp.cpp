// Fixture: obs sinks may stamp opt-in wall-clock metadata.
#include <chrono>

namespace fixture {

long sink_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
