// Fixture: real-time reads in deterministic code.
#include <chrono>
#include <ctime>

namespace fixture {

long bad_steady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_ctime() { return static_cast<long>(std::time(nullptr)); }

long allowed_read() {
  // GRIDBW-ALLOW(wall-clock): fixture-only suppression demo
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

}  // namespace fixture
