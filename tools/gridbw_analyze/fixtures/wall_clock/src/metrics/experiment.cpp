// Fixture: the experiment harness may measure the machine.
#include <chrono>

namespace fixture {

double harness_timing() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace fixture
