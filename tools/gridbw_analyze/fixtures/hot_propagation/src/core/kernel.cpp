// Fixture: interprocedural hot-propagation. sweep is the hot root; charge
// is a clean interior callee the walk descends through; expand (helper.cpp)
// allocates -> finding with the call chain; tally locks -> finding;
// boundary_refill carries its own ALLOW -> the walk stops there; the
// unannotated cold() path may allocate and lock freely.
#include <mutex>

#include "core/helper.hpp"

namespace fixture {

std::mutex stats_mu;
int stats_total = 0;

int charge(int n) { return expand(n) + 1; }

int tally(int n) {
  std::lock_guard<std::mutex> lk{stats_mu};
  stats_total += n;
  return stats_total;
}

// gridbw:hot
int sweep(int n) {
  int acc = charge(n);
  acc += tally(acc);
  acc += boundary_refill(acc);
  return acc;
}

int cold(int n) { return expand(n) + tally(n); }

}  // namespace fixture
