// Fixture: callees reached from the hot root in kernel.cpp. expand
// allocates (the finding lands here, with the chain from the root);
// boundary_refill carries its own ALLOW, so the walk stops at it.
#include "core/helper.hpp"

namespace fixture {

int expand(int n) {
  int* grown = new int[static_cast<unsigned>(n) + 1u];
  grown[0] = n;
  const int out = grown[0];
  delete[] grown;
  return out;
}

// GRIDBW-ALLOW(hot-propagation): amortized refill, measured off the sweep
int boundary_refill(int n) {
  int* grown = new int[static_cast<unsigned>(n) + 1u];
  grown[0] = n;
  const int out = grown[0];
  delete[] grown;
  return out;
}

}  // namespace fixture
