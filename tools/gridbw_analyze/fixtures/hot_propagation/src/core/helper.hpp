// Fixture helper header: declarations for the cross-file propagation case.
#pragma once

namespace fixture {
int expand(int n);
int boundary_refill(int n);
}  // namespace fixture
