// Fixture: heuristics legitimately see core, util, obs, and the export
// layer (transitively reachable via core) — but never control or sim.
#include "heuristics/rigid_fcfs.hpp"
#include "core/ledger.hpp"
#include "obs/observer.hpp"
#include "obs/utilization.hpp"
#include "util/random.hpp"
#include "sim/event_queue.hpp"
