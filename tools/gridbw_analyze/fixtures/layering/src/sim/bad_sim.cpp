// Fixture: the simulator kernel depends only on util.
#include "core/ledger.hpp"
#include "util/thread_pool.hpp"
