// Fixture: core reaching upward into heuristics and the umbrella header.
#include "heuristics/rigid_fcfs.hpp"
#include "gridbw.hpp"
#include "core/network.hpp"
#include "util/quantity.hpp"
#include <vector>
