// Fixture: profile-shaped narration helpers must not pull core's RateProfile
// into obs — the ids vocabulary stays the only sanctioned downward include.
#pragma once
#include "core/ids.hpp"
#include "core/rate_profile.hpp"
