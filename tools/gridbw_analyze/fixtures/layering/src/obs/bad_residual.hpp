// Fixture: the residual index is core vocabulary (core/residual_index.*),
// so the downward obs module may not reach up for it either.
#pragma once
#include "core/residual_index.hpp"
