// Fixture: the export layer (obs/utilization.*) sits ABOVE core, so this
// include is legal even though plain obs files may not do it.
#pragma once
#include "core/schedule.hpp"
#include "obs/trace_sink.hpp"
