// Fixture: gridbw_obs must stay below core — only the ids vocabulary is
// carved out. The suppressed include stays quiet.
#pragma once
#include "core/ids.hpp"
#include "core/network.hpp"
#include "core/schedule.hpp"  // GRIDBW-ALLOW(layering): fixture-only suppression demo
