// Fixture: a directory nobody added to the DAG.
#include "core/network.hpp"
