// Fixture: gridbw:guarded_by fields touched with and without the mutex held.
#include <mutex>

namespace fixture {

struct Cell {
  std::mutex mu;
  int applied{0};  // gridbw:guarded_by(mu)
  int capacity{0};  // unannotated: free to touch anywhere

  void good() {
    std::scoped_lock lock{mu};
    applied += 1;
  }

  void bad() {
    applied += 1;  // finding: mu not held
    capacity += 1;
  }

  // gridbw:requires(mu)
  void helper() {
    applied -= 1;  // sanctioned: caller holds mu
  }

  void allowed() {
    // GRIDBW-ALLOW(guarded-by): fixture-only suppression demo
    applied = 0;
  }
};

}  // namespace fixture
