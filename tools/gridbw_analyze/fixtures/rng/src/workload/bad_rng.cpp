// Fixture: random engines outside util/random.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_engine() {
  std::mt19937 gen{42};
  return static_cast<int>(gen());
}

int bad_device() {
  std::random_device device;
  return static_cast<int>(device());
}

int bad_crand() { return std::rand(); }

int allowed_engine() {
  std::minstd_rand gen{7};  // GRIDBW-ALLOW(rng-locality): fixture-only demo
  return static_cast<int>(gen());
}

}  // namespace fixture
