// Fixture: interprocedural requires-context. apply must only be called
// with mu held: an RAII hold satisfies it, a requires(mu) caller
// propagates it, a bare call is a finding, and an ALLOW justifies one.
#include <mutex>

namespace fixture {

std::mutex mu;
int shared_total = 0;

// gridbw:requires(mu)
void apply(int n) { shared_total += n; }

void good_caller(int n) {
  std::lock_guard<std::mutex> lk{mu};
  apply(n);
}

// gridbw:requires(mu)
void propagating_caller(int n) { apply(n + 1); }

void bad_caller(int n) { apply(n); }

void allowed_caller(int n) {
  // GRIDBW-ALLOW(requires-context): caller serialized externally in tests
  apply(n);
}

}  // namespace fixture
