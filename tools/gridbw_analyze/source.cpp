#include "analyze.hpp"

#include <cstddef>
#include <set>

namespace gridbw::analyze {

std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '/' && next == '/') {
      while (i < n && text[i] != '\n') {
        out.push_back(' ');
        ++i;
      }
    } else if (c == '/' && next == '*') {
      out.append("  ");
      i += 2;
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        out.push_back(text[i] == '\n' ? '\n' : ' ');
        ++i;
      }
      if (i < n) {  // closing "*/"
        out.append("  ");
        i += 2;
      }
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < n && text[i] != quote && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] != '\n') {
          out.append("  ");
          i += 2;
        } else {
          out.push_back(' ');
          ++i;
        }
      }
      if (i < n && text[i] == quote) {
        out.push_back(quote);
        ++i;
      }
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

SourceFile make_source(std::string rel_path, const std::string& text) {
  SourceFile file;
  file.rel_path = std::move(rel_path);
  file.raw_lines = split_lines(text);
  file.code_lines = split_lines(strip_comments_and_strings(text));
  return file;
}

void attach_companion(SourceFile& file, const std::string& text) {
  file.companion_code = strip_comments_and_strings(text);
  file.companion_raw_lines = split_lines(text);
  file.companion_code_lines = split_lines(file.companion_code);
}

namespace {

/// True when `line` contains `GRIDBW-ALLOW(<check>)`.
bool line_allows(const std::string& line, const std::string& check) {
  std::size_t pos = 0;
  static const std::string kMarker = "GRIDBW-ALLOW(";
  while ((pos = line.find(kMarker, pos)) != std::string::npos) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) return false;
    if (line.compare(open, close - open, check) == 0) return true;
    pos = close;
  }
  return false;
}

}  // namespace

bool SourceFile::suppressed(int line, const std::string& check) const {
  if (line < 1 || static_cast<std::size_t>(line) > raw_lines.size()) return false;
  const std::size_t idx = static_cast<std::size_t>(line) - 1;
  if (line_allows(raw_lines[idx], check)) return true;
  return idx > 0 && line_allows(raw_lines[idx - 1], check);
}

std::vector<std::string> stale_allows_in(const SourceFile& file) {
  static const std::string kMarker = "GRIDBW-ALLOW(";
  std::set<std::string> known;
  for (const CheckInfo& info : check_catalogue()) known.insert(info.id);

  std::vector<std::string> stale;
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string& line = file.raw_lines[i];
    std::size_t pos = 0;
    while ((pos = line.find(kMarker, pos)) != std::string::npos) {
      const std::size_t open = pos + kMarker.size();
      const std::size_t close = line.find(')', open);
      if (close == std::string::npos) break;
      const std::string id = line.substr(open, close - open);
      pos = close;
      // An "id" with characters outside [a-z0-9-] is prose about the
      // mechanism (docs write GRIDBW-ALLOW(<check>)), not a suppression.
      bool id_like = !id.empty();
      for (const char c : id) {
        id_like = id_like && ((c >= 'a' && c <= 'z') ||
                              (c >= '0' && c <= '9') || c == '-');
      }
      if (id_like && known.count(id) == 0) {
        stale.push_back(file.rel_path + ":" + std::to_string(i + 1) + ": " + id);
      }
    }
  }
  return stale;
}

}  // namespace gridbw::analyze
