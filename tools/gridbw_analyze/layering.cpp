// The module DAG. Mirrors the CMake link graph in src/*/CMakeLists.txt and
// is documented (with a diagram) in DESIGN.md §5f — keep the three in sync.

#include "analyze.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

/// Direct dependencies, module -> modules whose headers it may include.
/// The analyzer enforces the reflexive-transitive closure of this relation:
/// if core may use util, everything above core may too (the compiler already
/// sees those headers transitively, so banning the direct edge buys nothing).
const std::map<std::string, std::vector<std::string>>& direct_deps() {
  static const std::map<std::string, std::vector<std::string>> kDeps = {
      {"util", {}},
      {"obs", {"util"}},  // + the core/ids.hpp carve-out below
      {"sim", {"util"}},
      {"core", {"util", "obs"}},
      {"flow", {}},
      {"baseline", {"core", "util"}},
      {"workload", {"core", "util"}},
      {"heuristics", {"core", "util"}},
      {"exact", {"core", "util"}},
      {"longlived", {"core", "util", "flow"}},
      {"service", {"core", "obs", "util"}},
      {"dataplane", {"core", "baseline", "util"}},
      {"control", {"core", "sim", "heuristics", "util"}},
      {"metrics", {"core", "util"}},
      // gridbw_obs_export (src/obs/utilization.*) sits ABOVE core: it
      // replays schedules onto TimelineProfiles. It is the one obs surface
      // allowed to look upward.
      {"obs_export", {"obs", "core", "util"}},
  };
  return kDeps;
}

const std::map<std::string, std::set<std::string>>& closure() {
  static const std::map<std::string, std::set<std::string>> kClosure = [] {
    std::map<std::string, std::set<std::string>> result;
    for (const auto& [module, deps] : direct_deps()) {
      std::set<std::string>& reach = result[module];
      reach.insert(module);
      std::vector<std::string> stack{deps.begin(), deps.end()};
      while (!stack.empty()) {
        const std::string dep = stack.back();
        stack.pop_back();
        if (!reach.insert(dep).second) continue;
        const auto it = direct_deps().find(dep);
        if (it != direct_deps().end()) {
          stack.insert(stack.end(), it->second.begin(), it->second.end());
        }
      }
    }
    return result;
  }();
  return kClosure;
}

}  // namespace

std::string module_of(const std::string& src_rel_path) {
  if (src_rel_path == "gridbw.hpp") return "umbrella";
  const std::size_t slash = src_rel_path.find('/');
  if (slash == std::string::npos) return "";
  const std::string dir = src_rel_path.substr(0, slash);
  // The export layer is file-granular: utilization.* is gridbw_obs_export.
  if (dir == "obs" && src_rel_path.compare(slash + 1, 12, "utilization.") == 0) {
    return "obs_export";
  }
  return closure().count(dir) != 0 ? dir : "";
}

bool layering_allows(const std::string& from, const std::string& to) {
  if (from == "umbrella") return true;  // the umbrella header sees everything
  if (to == "umbrella") return false;   // nothing below may include it back
  const auto it = closure().find(from);
  if (it == closure().end()) return false;
  // obs_export headers are includable by anything that may include core:
  // the export layer sits beside core in the DAG.
  if (to == "obs_export") return it->second.count("core") != 0 || from == "obs_export";
  return it->second.count(to) != 0;
}

std::string layering_allowed_list(const std::string& from) {
  const auto it = closure().find(from);
  if (it == closure().end()) return "";
  std::string out;
  for (const std::string& module : it->second) {
    if (!out.empty()) out += ", ";
    out += module;
  }
  return out;
}

}  // namespace gridbw::analyze
