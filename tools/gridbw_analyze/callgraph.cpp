#include "callgraph.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

constexpr std::size_t kNoBody = static_cast<std::size_t>(-1);

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(const std::string& text, std::size_t pos, const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

/// Names that look like calls lexically but never are (control keywords,
/// cast-like operators) or that are functional casts on fundamental types.
bool is_call_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "alignas",  "decltype",
      "noexcept", "typeid",   "requires", "static_assert", "new",
      "delete",   "throw",    "assert",   "defined",  "co_await",
      "co_yield", "co_return",
      // functional casts on fundamental types / ubiquitous aliases
      "int",      "char",     "bool",     "float",    "double",
      "long",     "short",    "unsigned", "signed",   "void",
      "auto",     "size_t",   "int8_t",   "int16_t",  "int32_t",
      "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "ptrdiff_t"};
  return kKeywords.count(name) != 0;
}

/// Member-call names that collide with the standard container/stream
/// vocabulary. A lexical graph cannot tell `pending_.clear()` (a vector)
/// from `sink.clear()` (a class in the include closure), and the container
/// reading is overwhelmingly the right one, so member calls with these
/// names draw no edges — a documented precision choice, mirrored by the
/// hot-call-unresolved virtual-name test.
bool is_ambiguous_member_name(const std::string& name) {
  static const std::set<std::string> kStl = {
      "count",   "clear",       "size",     "empty",        "at",
      "find",    "begin",       "end",      "cbegin",       "cend",
      "insert",  "erase",       "push_back", "pop_back",    "emplace_back",
      "emplace", "reserve",     "resize",   "front",        "back",
      "data",    "swap",        "contains", "lower_bound",  "upper_bound",
      "assign",  "push",        "pop",      "top",          "get",
      "reset",   "release",     "value",    "has_value",    "flush",
      "str",     "c_str",       "substr",   "compare",      "append",
      "length",  "first",       "second",   "lock",         "unlock",
      "min",     "max"};
  return kStl.count(name) != 0;
}

/// Words that may directly precede a call expression; any other identifier
/// word before the name means a declaration (`void f(`) or a placement
/// construction (`new Foo(`), not a call.
bool keeps_call_after(const std::string& word) {
  static const std::set<std::string> kKeep = {"return",   "else",  "case",
                                              "goto",     "do",    "co_return",
                                              "co_yield", "co_await"};
  return kKeep.count(word) != 0;
}

std::vector<std::string> split_components(const std::string& qualified) {
  std::vector<std::string> parts;
  std::string current;
  for (std::size_t i = 0; i < qualified.size(); ++i) {
    if (qualified.compare(i, 2, "::") == 0) {
      parts.push_back(current);
      current.clear();
      ++i;
    } else {
      current.push_back(qualified[i]);
    }
  }
  parts.push_back(current);
  return parts;
}

/// Suffix compatibility on '::' components, either direction: a call written
/// `execute_arrival` matches the symbol `Impl::execute_arrival`, and a call
/// written `Impl::execute_arrival` matches a symbol indexed as plain
/// `execute_arrival` (in-class definition).
bool components_compatible(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  const std::vector<std::string>& shorter = a.size() <= b.size() ? a : b;
  const std::vector<std::string>& longer = a.size() <= b.size() ? b : a;
  const std::size_t offset = longer.size() - shorter.size();
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    if (shorter[i] != longer[offset + i]) return false;
  }
  return true;
}

/// One mutex held over a byte interval of one file: RAII lock sites plus the
/// gridbw:requires-derived holds (same model as concurrency.cpp).
struct Hold {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string mutex;
};

std::vector<Hold> holds_of(const ScopeInfo& info) {
  std::vector<Hold> holds;
  for (const LockSite& site : info.locks) {
    for (const std::string& mutex : site.mutexes) {
      holds.push_back({site.pos, site.release, mutex});
    }
  }
  for (const RequiresSite& site : info.requires_held) {
    for (const std::string& mutex : site.mutexes) {
      holds.push_back({site.body_open, site.body_close, mutex});
    }
  }
  return holds;
}

}  // namespace

std::vector<CallSite> extract_calls(const std::string& code,
                                    const ScopeInfo& scope) {
  std::vector<CallSite> calls;
  for (std::size_t paren = 0; paren < code.size(); ++paren) {
    if (code[paren] != '(') continue;
    // Read the (possibly qualified) identifier before the paren, tolerating
    // whitespace (`if (` and friends fall to the keyword filter).
    std::size_t end = paren;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(code[end - 1])) != 0) {
      --end;
    }
    std::size_t begin = end;
    while (begin > 0) {
      const char c = code[begin - 1];
      if (is_ident(c)) {
        --begin;
        continue;
      }
      if (c == ':' && begin > 1 && code[begin - 2] == ':') {
        begin -= 2;
        continue;
      }
      break;
    }
    if (begin == end) continue;
    std::string name = code.substr(begin, end - begin);
    while (name.compare(0, 2, "::") == 0) name = name.substr(2);
    if (name.empty() || name.front() == ':' || name.back() == ':') continue;
    const std::string last = name.rfind("::") == std::string::npos
                                 ? name
                                 : name.substr(name.rfind("::") + 2);
    if (is_call_keyword(last) || is_call_keyword(name)) continue;

    CallSite call;
    call.pos = begin;
    call.name = name;

    // Classify by what precedes the name.
    std::size_t before = begin;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
      --before;
    }
    if (before >= 2 && code[before - 2] == '-' && code[before - 1] == '>') {
      call.member = true;
    } else if (before >= 1 && code[before - 1] == '.') {
      call.member = true;
    } else if (before >= 1 &&
               (code[before - 1] == '>' || code[before - 1] == '*' ||
                code[before - 1] == '&' || code[before - 1] == '~')) {
      // `std::vector<T> f(` / `Foo* f(` / `Foo& f(`: a declaration header,
      // not a call (a template-argument call `f<T>(` never reaches here —
      // its name read stops at '>').
      continue;
    } else if (before >= 1 && is_ident(code[before - 1])) {
      std::size_t word_begin = before;
      while (word_begin > 0 && is_ident(code[word_begin - 1])) --word_begin;
      if (!keeps_call_after(code.substr(word_begin, before - word_begin))) {
        continue;  // `void f(` declaration, `new Foo(` placement, ...
      }
    }

    // Enclosing outermost function body, if any.
    for (const FunctionScope& fn : scope.functions) {
      if (fn.open < call.pos && call.pos < fn.close) {
        call.enclosing_body = fn.open;
        break;
      }
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

namespace {

/// A symbol's coordinates in the merged per-file tables.
struct SymbolRef {
  std::size_t file = 0;
  std::size_t sym = 0;

  friend bool operator<(const SymbolRef& a, const SymbolRef& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.sym < b.sym;
  }
  friend bool operator==(const SymbolRef& a, const SymbolRef& b) {
    return a.file == b.file && a.sym == b.sym;
  }
};

/// The merged project view phase 2 consumes.
struct Project {
  const std::vector<FileEntry>* entries = nullptr;
  /// closure[f]: entry indices visible from f (reflexive, include-transitive,
  /// sibling-augmented), sorted.
  std::vector<std::vector<std::size_t>> closure;
  /// Last-component name -> definitions, in (file, sym) order.
  std::map<std::string, std::vector<SymbolRef>> by_name;
  /// Union of every file's virtual-method names.
  std::set<std::string> virtual_methods;
  /// resolved[f][c]: targets of entries[f].calls[c], in (file, sym) order.
  std::vector<std::vector<std::vector<SymbolRef>>> resolved;
  std::size_t edges_resolved = 0;
  std::size_t edges_unresolved = 0;

  const Symbol& symbol(const SymbolRef& ref) const {
    return (*entries)[ref.file].symbols.symbols[ref.sym];
  }
};

/// True when `rel` (repo-relative) is how include path `inc` would be
/// written from some scan root: an exact match or a path suffix.
bool include_matches(const std::string& rel, const std::string& inc) {
  if (rel == inc) return true;
  if (rel.size() <= inc.size()) return false;
  return rel.compare(rel.size() - inc.size() - 1, 1, "/") == 0 &&
         rel.compare(rel.size() - inc.size(), inc.size(), inc) == 0;
}

std::vector<std::vector<std::size_t>> build_closures(
    const std::vector<FileEntry>& entries) {
  const std::size_t n = entries.size();

  // rel path -> entry index, and sibling pairs (extension swapped).
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t i = 0; i < n; ++i) by_rel.emplace(entries[i].rel, i);
  const auto sibling_of = [&](std::size_t i) -> std::size_t {
    const std::string& rel = entries[i].rel;
    const std::size_t dot = rel.rfind('.');
    if (dot == std::string::npos) return kNoBody;
    const std::string ext = rel.substr(dot);
    const std::string other =
        rel.substr(0, dot) + (ext == ".cpp" ? ".hpp" : ".cpp");
    const auto it = by_rel.find(other);
    return it == by_rel.end() ? kNoBody : it->second;
  };

  // Direct include targets per entry, resolved by path suffix once.
  std::vector<std::vector<std::size_t>> direct(n);
  std::map<std::string, std::vector<std::size_t>> include_targets;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& inc : entries[i].symbols.quoted_includes) {
      auto [it, fresh] = include_targets.try_emplace(inc);
      if (fresh) {
        for (std::size_t j = 0; j < n; ++j) {
          if (include_matches(entries[j].rel, inc)) it->second.push_back(j);
        }
      }
      for (const std::size_t j : it->second) direct[i].push_back(j);
    }
  }

  std::vector<std::vector<std::size_t>> closure(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> seen{i};
    std::vector<std::size_t> queue{i};
    while (!queue.empty()) {
      const std::size_t f = queue.back();
      queue.pop_back();
      const std::size_t sib = sibling_of(f);
      if (sib != kNoBody && seen.insert(sib).second) queue.push_back(sib);
      for (const std::size_t g : direct[f]) {
        if (seen.insert(g).second) queue.push_back(g);
      }
    }
    closure[i].assign(seen.begin(), seen.end());
  }
  return closure;
}

Project build_project(const std::vector<FileEntry>& entries) {
  Project project;
  project.entries = &entries;
  project.closure = build_closures(entries);

  for (std::size_t f = 0; f < entries.size(); ++f) {
    const std::vector<Symbol>& symbols = entries[f].symbols.symbols;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      project.by_name[symbols[s].name].push_back({f, s});
    }
    for (const std::string& name : entries[f].symbols.virtual_methods) {
      project.virtual_methods.insert(name);
    }
  }

  project.resolved.resize(entries.size());
  for (std::size_t f = 0; f < entries.size(); ++f) {
    const std::vector<std::size_t>& visible = project.closure[f];
    project.resolved[f].resize(entries[f].calls.size());
    for (std::size_t c = 0; c < entries[f].calls.size(); ++c) {
      const CallSite& call = entries[f].calls[c];
      const std::vector<std::string> parts = split_components(call.name);
      if (parts.front() == "std") continue;  // external, never an edge
      if (call.member && is_ambiguous_member_name(parts.back())) continue;
      const auto it = project.by_name.find(parts.back());
      if (it != project.by_name.end()) {
        for (const SymbolRef& ref : it->second) {
          if (!std::binary_search(visible.begin(), visible.end(), ref.file)) {
            continue;
          }
          if (parts.size() > 1 &&
              !components_compatible(
                  parts, split_components(project.symbol(ref).qualified))) {
            continue;
          }
          project.resolved[f][c].push_back(ref);
        }
      }
      if (project.resolved[f][c].empty()) {
        ++project.edges_unresolved;
      } else {
        project.edges_resolved += project.resolved[f][c].size();
      }
    }
  }
  return project;
}

// ---------------------------------------------------------------------------
// The three interprocedural checks
// ---------------------------------------------------------------------------

struct InterCtx {
  const std::vector<FileEntry>& entries;
  const Project& project;
  const std::vector<const Options*>& per_entry_options;
  InterprocReport* out;

  [[nodiscard]] bool enabled(std::size_t file, const char* check) const {
    const Options* options = per_entry_options[file];
    return options != nullptr && options->checks.count(check) != 0;
  }

  void report(std::size_t file, std::size_t pos, const char* check,
              std::string message) const {
    if (!enabled(file, check)) return;
    const FileEntry& entry = entries[file];
    const int line = line_of(entry.starts, pos);
    if (entry.file.suppressed(line, check)) return;
    out->per_file[file].push_back(
        Finding{entry.rel, line, check, std::move(message)});
  }
};

/// The hot-path ban list (mirrors check_hot_path in checks.cpp), applied to
/// transitively reached callee bodies.
struct BanToken {
  const char* token;
  bool word;
  const char* what;
};

constexpr BanToken kBanTokens[] = {
    {"throw", true, "throw"},
    {"new", true, "allocation (new)"},
    {"make_unique", true, "allocation (make_unique)"},
    {"make_shared", true, "allocation (make_shared)"},
    {"malloc", true, "allocation (malloc)"},
    {"calloc", true, "allocation (calloc)"},
    {"realloc", true, "allocation (realloc)"},
    {"dynamic_cast", true, "dynamic_cast"},
    {"->record(", false, "virtual sink call (TraceSink::record)"},
};

/// Shared walk state: which symbols the hot walk has entered, and through
/// which chain. Chains are first-visit-wins; the walk order (roots in file
/// order, calls in position order, targets in (file, sym) order) pins them.
struct HotWalk {
  std::set<SymbolRef> visited;
  /// Symbols whose bodies count as hot context for hot-call-unresolved:
  /// the roots plus every clean interior callee the walk descended into.
  std::vector<std::pair<SymbolRef, std::string>> hot_context;  // ref, chain
};

void scan_callee_body(const InterCtx& ctx, const SymbolRef& ref,
                      const std::string& chain) {
  const FileEntry& entry = ctx.entries[ref.file];
  const Symbol& symbol = ctx.project.symbol(ref);
  const std::string body =
      entry.code.substr(symbol.body_open, symbol.body_close - symbol.body_open);
  for (const BanToken& t : kBanTokens) {
    const std::string token = t.token;
    std::size_t pos = 0;
    while ((pos = body.find(token, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += token.size();
      if (t.word && !word_at(body, hit, token)) continue;
      ctx.report(ref.file, symbol.body_open + hit, "hot-propagation",
                 std::string{t.what} + " in '" + symbol.qualified +
                     "', reached from a gridbw:hot body via " + chain +
                     " — hoist it, mark the callee // gridbw:hot, or justify "
                     "with GRIDBW-ALLOW(hot-propagation)");
    }
  }
  for (const LockSite& site : entry.scope.locks) {
    if (site.pos <= symbol.body_open || site.pos >= symbol.body_close) continue;
    std::string mutexes;
    for (const std::string& mutex : site.mutexes) {
      if (!mutexes.empty()) mutexes += ", ";
      mutexes += mutex;
    }
    ctx.report(ref.file, site.pos, "hot-propagation",
               "lock acquisition (" + mutexes + ") in '" + symbol.qualified +
                   "', reached from a gridbw:hot body via " + chain +
                   " — hot paths stay lock-free; restructure or justify with "
                   "GRIDBW-ALLOW(hot-propagation)");
  }
}

void walk_hot(const InterCtx& ctx, HotWalk& walk, const SymbolRef& ref,
              const std::string& chain) {
  const FileEntry& entry = ctx.entries[ref.file];
  const Symbol& symbol = ctx.project.symbol(ref);
  walk.hot_context.emplace_back(ref, chain);
  for (std::size_t c = 0; c < entry.calls.size(); ++c) {
    if (entry.calls[c].enclosing_body != symbol.body_open) continue;
    for (const SymbolRef& target : ctx.project.resolved[ref.file][c]) {
      if (!walk.visited.insert(target).second) continue;
      const Symbol& callee = ctx.project.symbol(target);
      if (callee.hot || callee.hot_allow) continue;  // its own wall applies
      const std::string next = chain + " -> " + callee.qualified;
      scan_callee_body(ctx, target, next);
      walk_hot(ctx, walk, target, next);
    }
  }
}

void check_hot_propagation(const InterCtx& ctx, HotWalk& walk) {
  for (std::size_t f = 0; f < ctx.entries.size(); ++f) {
    const std::vector<Symbol>& symbols = ctx.entries[f].symbols.symbols;
    for (std::size_t s = 0; s < symbols.size(); ++s) {
      if (!symbols[s].hot) continue;
      const SymbolRef root{f, s};
      walk.visited.insert(root);
      walk_hot(ctx, walk, root, symbols[s].qualified);
    }
  }
}

void check_requires_context(const InterCtx& ctx) {
  // Lazily built per-file hold intervals (most files have none).
  std::vector<std::vector<Hold>> holds(ctx.entries.size());
  std::vector<bool> holds_built(ctx.entries.size(), false);

  for (std::size_t f = 0; f < ctx.entries.size(); ++f) {
    const FileEntry& entry = ctx.entries[f];
    for (std::size_t c = 0; c < entry.calls.size(); ++c) {
      const CallSite& call = entry.calls[c];
      for (const SymbolRef& target : ctx.project.resolved[f][c]) {
        const Symbol& callee = ctx.project.symbol(target);
        if (callee.requires_mutexes.empty()) continue;
        if (!holds_built[f]) {
          holds[f] = holds_of(entry.scope);
          holds_built[f] = true;
        }
        std::string missing;
        for (const std::string& mutex : callee.requires_mutexes) {
          bool held = false;
          for (const Hold& hold : holds[f]) {
            if (hold.begin < call.pos && call.pos < hold.end &&
                mutex_matches(hold.mutex, mutex)) {
              held = true;
              break;
            }
          }
          if (!held) {
            if (!missing.empty()) missing += ", ";
            missing += mutex;
          }
        }
        if (!missing.empty()) {
          ctx.report(f, call.pos, "requires-context",
                     "call to '" + callee.qualified +
                         "', which is gridbw:requires(" + missing +
                         "), without '" + missing +
                         "' held — acquire it (scoped_lock/lock_guard/"
                         "unique_lock) or mark the caller gridbw:requires");
        }
      }
    }
  }
}

void check_hot_call_unresolved(const InterCtx& ctx, const HotWalk& walk) {
  // Each hot-context symbol appears once and each call site belongs to one
  // enclosing body, so every (body, call) pair is examined exactly once.
  for (const auto& [ref, chain] : walk.hot_context) {
    const FileEntry& entry = ctx.entries[ref.file];
    const Symbol& symbol = ctx.project.symbol(ref);
    for (std::size_t c = 0; c < entry.calls.size(); ++c) {
      const CallSite& call = entry.calls[c];
      if (call.enclosing_body != symbol.body_open) continue;
      const std::vector<std::string> parts = split_components(call.name);
      if (parts.front() == "std") continue;
      const std::string& last = parts.back();
      if (std::binary_search(entry.symbols.callable_names.begin(),
                             entry.symbols.callable_names.end(), last)) {
        ctx.report(ref.file, call.pos, "hot-call-unresolved",
                   "call through std::function '" + last +
                       "' in hot context (" + chain +
                       ") — the graph cannot see the bound callable; verify "
                       "it is hot-clean and justify with "
                       "GRIDBW-ALLOW(hot-call-unresolved)");
        continue;
      }
      if (call.member && !is_ambiguous_member_name(last) &&
          ctx.project.virtual_methods.count(last) != 0) {
        ctx.report(ref.file, call.pos, "hot-call-unresolved",
                   "virtual call '" + last + "' in hot context (" + chain +
                       ") — dispatch target is unresolvable; devirtualize, "
                       "hoist it out, or justify with "
                       "GRIDBW-ALLOW(hot-call-unresolved)");
      }
    }
  }
}

}  // namespace

InterprocReport run_interprocedural_checks(
    const std::vector<FileEntry>& entries,
    const std::vector<const Options*>& per_entry_options) {
  InterprocReport report;
  report.per_file.resize(entries.size());
  const Project project = build_project(entries);
  report.edges_resolved = project.edges_resolved;
  report.edges_unresolved = project.edges_unresolved;

  const InterCtx ctx{entries, project, per_entry_options, &report};
  HotWalk walk;
  check_hot_propagation(ctx, walk);
  check_requires_context(ctx);
  check_hot_call_unresolved(ctx, walk);
  return report;
}

}  // namespace gridbw::analyze
