// Deterministic project-wide call graph (ISSUE 10). Phase 1 of the tree
// scan builds one FileEntry per file (stripped code, scope model, symbol
// table, call sites) in parallel; the entries arrive here in sorted-path
// order and every global pass below iterates them in that order, so the
// result — and every finding derived from it — is byte-identical for any
// --threads value.
//
// Resolution is best-effort and lexical, like the symbol index it consumes:
// a call edge is drawn only when the callee name (suffix-aware on '::'
// components) matches a symbol defined in the caller's include closure
// (quoted #includes, transitively, plus the sibling header/source of every
// file in the closure). `std::`-qualified calls are external by definition.
// Everything else that cannot be matched is recorded as an unresolved edge —
// counted, never fatal — because a lexical scanner must under-approximate
// the graph, not invent edges across unrelated modules.
//
// The three interprocedural checks that run on top:
//
//   hot-propagation      walk resolved edges from every `// gridbw:hot` body;
//                        each reachable function must be hot-clean (no
//                        throw/alloc/dynamic_cast/->record(/lock acquisition)
//                        unless it carries its own gridbw:hot or a
//                        GRIDBW-ALLOW(hot-propagation). Findings print the
//                        call chain from the hot root.
//   requires-context     a call to a gridbw:requires(mu) function from a
//                        body that neither holds mu via an RAII lock site
//                        nor declares gridbw:requires(mu) itself.
//   hot-call-unresolved  calls from hot-context bodies through sinks the
//                        graph cannot resolve — std::function-typed
//                        callables and virtual methods — must carry a
//                        GRIDBW-ALLOW(hot-call-unresolved) justification.

#pragma once

#include "analyze.hpp"
#include "symbols.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace gridbw::analyze {

/// One candidate call site in one file's stripped code.
struct CallSite {
  std::size_t pos = 0;   // offset of the first character of the name
  std::string name;      // as written, possibly qualified ("Impl::collect")
  bool member = false;   // preceded by '.' or '->'
  /// body_open of the enclosing outermost function scope; npos at file scope.
  std::size_t enclosing_body = static_cast<std::size_t>(-1);
};

/// Extracts call sites from one file's stripped code: an identifier (with
/// optional '::' qualification) directly followed by '(', minus keywords,
/// functional casts on fundamental types, and declaration-shaped sites
/// (preceded by a type-ish token). Calls through explicit template
/// arguments (`f<T>(...)`) are not extracted — a documented limitation.
[[nodiscard]] std::vector<CallSite> extract_calls(const std::string& code,
                                                  const ScopeInfo& scope);

/// Phase-1 product for one scanned file, in scan (sorted-path) order.
struct FileEntry {
  std::string rel;       // repo-relative path ("src/core/ledger.cpp")
  std::string root_rel;  // relative to the scan root ("core/ledger.cpp")
  std::size_t root_index = 0;
  SourceFile file;
  std::string code;                  // code lines joined
  std::vector<std::size_t> starts;   // line starts into `code`
  ScopeInfo scope;
  FileSymbols symbols;
  std::vector<CallSite> calls;
};

/// Output of the interprocedural passes: findings grouped by the file they
/// land in (aligned with the entries vector) plus the edge statistics.
struct InterprocReport {
  std::vector<std::vector<Finding>> per_file;
  std::size_t edges_resolved = 0;
  std::size_t edges_unresolved = 0;
};

/// Runs hot-propagation, requires-context, and hot-call-unresolved over the
/// merged per-file tables. `per_entry_options[i]` is the effective check set
/// for entries[i]'s scan root (nullptr = nothing enabled there); suppression
/// is applied against the file each finding lands in. Serial and
/// deterministic: entries must already be in sorted-path order.
[[nodiscard]] InterprocReport run_interprocedural_checks(
    const std::vector<FileEntry>& entries,
    const std::vector<const Options*>& per_entry_options);

}  // namespace gridbw::analyze
