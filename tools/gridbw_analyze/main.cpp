// gridbw_analyze CLI. Exit codes: 0 clean (or --fix-baseline / --list-checks),
// 1 new findings, 2 usage/IO error.

#include "analyze.hpp"

#include <chrono>
#include <cstddef>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The --json report: a wrapper object so the scan stats travel with the
/// findings array (the array itself stays byte-identical across runs).
std::string json_report(const gridbw::analyze::TreeReport& report,
                        const std::vector<gridbw::analyze::Finding>& fresh,
                        long long scan_ms) {
  std::string findings = gridbw::analyze::render_json(fresh);
  while (!findings.empty() && findings.back() == '\n') findings.pop_back();
  std::string out = "{\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
  out += "  \"scan_ms\": " + std::to_string(scan_ms) + ",\n";
  out += "  \"findings\": ";
  // Indent the embedded array body by two spaces for readability.
  for (const char c : findings) {
    out.push_back(c);
    if (c == '\n') out += "  ";
  }
  out += "\n}\n";
  return out;
}

/// Diff-style summary grouped by check: what CI prints on failure.
void print_summary(const std::vector<gridbw::analyze::Finding>& fresh,
                   const std::vector<std::string>& stale) {
  std::map<std::string, std::vector<const gridbw::analyze::Finding*>> by_check;
  for (const gridbw::analyze::Finding& finding : fresh) {
    by_check[finding.check].push_back(&finding);
  }
  for (const auto& [check, findings] : by_check) {
    std::cout << "[" << check << "] " << findings.size()
              << " new finding(s):\n";
    for (const gridbw::analyze::Finding* finding : findings) {
      std::cout << "  + " << finding->path << ":" << finding->line << ": "
                << finding->message << "\n";
    }
  }
  if (!stale.empty()) {
    std::cout << "[baseline] " << stale.size()
              << " stale entry/entries (fixed findings — run --fix-baseline):\n";
    for (const std::string& key : stale) std::cout << "  - " << key << "\n";
  }
  if (by_check.empty() && stale.empty()) {
    std::cout << "gridbw-analyze: clean — no new findings, no stale baseline "
                 "entries\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridbw::analyze;

  std::string root;
  std::string baseline_path;
  std::string json_out_path;
  bool fix_baseline = false;
  bool json = false;
  bool summary = false;
  bool list_checks = false;
  Options options;

  const std::vector<std::string> args{argv + 1, argv + argc};
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "gridbw-analyze: " << arg << " needs a value\n"
                  << usage_text();
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--json-out") {
      json_out_path = value();
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--threads") {
      try {
        options.threads = static_cast<std::size_t>(std::stoul(value()));
      } catch (const std::exception&) {
        std::cerr << "gridbw-analyze: --threads needs a number\n";
        return 2;
      }
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg == "--checks") {
      std::istringstream list{value()};
      std::string id;
      while (std::getline(list, id, ',')) {
        if (!id.empty()) options.checks.insert(id);
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << usage_text();
      return 0;
    } else {
      std::cerr << "gridbw-analyze: unknown argument '" << arg << "'\n"
                << usage_text();
      return 2;
    }
  }

  if (list_checks) {
    for (const CheckInfo& check : check_catalogue()) {
      std::cout << check.id << "\n    " << check.summary << "\n";
    }
    return 0;
  }
  if (root.empty()) {
    std::cerr << "gridbw-analyze: --root is required\n" << usage_text();
    return 2;
  }
  for (const std::string& id : options.checks) {
    bool known = false;
    for (const CheckInfo& check : check_catalogue()) known |= id == check.id;
    if (!known) {
      std::cerr << "gridbw-analyze: unknown check '" << id
                << "' (see --list-checks)\n";
      return 2;
    }
  }
  if (fix_baseline && baseline_path.empty()) {
    std::cerr << "gridbw-analyze: --fix-baseline needs --baseline FILE\n";
    return 2;
  }

  try {
    // Scan wall-time is a tool statistic, not simulated time.
    // GRIDBW-ALLOW(wall-clock): measuring the analyzer itself.
    const auto scan_begin = std::chrono::steady_clock::now();
    const TreeReport report = analyze_tree(root, options);
    const long long scan_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            // GRIDBW-ALLOW(wall-clock): measuring the analyzer itself.
            std::chrono::steady_clock::now() - scan_begin)
            .count();

    if (fix_baseline) {
      write_file_atomic(baseline_path, render_baseline(report.keys));
      std::cout << "gridbw-analyze: baseline rewritten with "
                << report.keys.size() << " finding(s) -> " << baseline_path
                << "\n";
      return 0;
    }

    Baseline baseline;
    if (!baseline_path.empty()) {
      baseline = parse_baseline(read_file_or_empty(baseline_path));
    }
    const BaselineSplit split =
        apply_baseline(report.findings, report.keys, baseline);

    if (!json_out_path.empty()) {
      // Temp file + rename: an aborted scan can never leave a truncated
      // report for the CI artifact upload.
      write_file_atomic(json_out_path, json_report(report, split.fresh, scan_ms));
    }
    if (json) {
      std::cout << json_report(report, split.fresh, scan_ms);
    } else if (summary) {
      print_summary(split.fresh, split.stale);
    } else {
      for (const Finding& finding : split.fresh) {
        std::cout << finding.path << ":" << finding.line << ": ["
                  << finding.check << "] " << finding.message << "\n";
      }
    }
    for (const std::string& key : split.stale) {
      std::cerr << "gridbw-analyze: stale baseline entry (fixed? run "
                   "--fix-baseline): "
                << key << "\n";
    }
    for (const std::string& stale : report.stale_allows) {
      std::cerr << "gridbw-analyze: stale GRIDBW-ALLOW (unknown check id): "
                << stale << "\n";
    }
    std::cerr << "gridbw-analyze: " << report.files_scanned << " file(s), "
              << split.fresh.size() << " new finding(s), "
              << split.baselined.size() << " baselined, " << split.stale.size()
              << " stale, " << scan_ms << " ms\n";
    std::cerr << "gridbw-analyze: call graph: " << report.call_edges_resolved
              << " resolved edge(s), " << report.call_edges_unresolved
              << " unresolved call site(s) (informational)\n";
    return split.fresh.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
