// gridbw_analyze CLI. Exit codes: 0 clean (or --fix-baseline / --list-checks),
// 1 new findings, 2 usage/IO error.

#include "analyze.hpp"

#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr const char* kUsage =
    "usage: gridbw_analyze --root DIR [options]\n"
    "\n"
    "  --root DIR        repository root (its src/ subtree is scanned)\n"
    "  --baseline FILE   tolerate findings listed in FILE (check|path|line)\n"
    "  --fix-baseline    rewrite FILE with the current findings and exit 0\n"
    "  --checks a,b,...  run only the listed checks (default: all)\n"
    "  --json            print findings as a JSON array instead of text\n"
    "  --list-checks     print the check catalogue and exit\n";

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridbw::analyze;

  std::string root;
  std::string baseline_path;
  bool fix_baseline = false;
  bool json = false;
  bool list_checks = false;
  Options options;

  const std::vector<std::string> args{argv + 1, argv + argc};
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "gridbw-analyze: " << arg << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg == "--checks") {
      std::istringstream list{value()};
      std::string id;
      while (std::getline(list, id, ',')) {
        if (!id.empty()) options.checks.insert(id);
      }
    } else if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "gridbw-analyze: unknown argument '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (list_checks) {
    for (const CheckInfo& check : check_catalogue()) {
      std::cout << check.id << "\n    " << check.summary << "\n";
    }
    return 0;
  }
  if (root.empty()) {
    std::cerr << "gridbw-analyze: --root is required\n" << kUsage;
    return 2;
  }
  for (const std::string& id : options.checks) {
    bool known = false;
    for (const CheckInfo& check : check_catalogue()) known |= id == check.id;
    if (!known) {
      std::cerr << "gridbw-analyze: unknown check '" << id
                << "' (see --list-checks)\n";
      return 2;
    }
  }
  if (fix_baseline && baseline_path.empty()) {
    std::cerr << "gridbw-analyze: --fix-baseline needs --baseline FILE\n";
    return 2;
  }

  try {
    const TreeReport report = analyze_tree(root, options);

    if (fix_baseline) {
      std::ofstream out{baseline_path, std::ios::binary};
      if (!out) {
        std::cerr << "gridbw-analyze: cannot write " << baseline_path << "\n";
        return 2;
      }
      out << render_baseline(report.keys);
      std::cout << "gridbw-analyze: baseline rewritten with "
                << report.keys.size() << " finding(s) -> " << baseline_path
                << "\n";
      return 0;
    }

    Baseline baseline;
    if (!baseline_path.empty()) {
      baseline = parse_baseline(read_file_or_empty(baseline_path));
    }
    const BaselineSplit split =
        apply_baseline(report.findings, report.keys, baseline);

    if (json) {
      std::cout << render_json(split.fresh);
    } else {
      for (const Finding& finding : split.fresh) {
        std::cout << finding.path << ":" << finding.line << ": ["
                  << finding.check << "] " << finding.message << "\n";
      }
    }
    for (const std::string& key : split.stale) {
      std::cerr << "gridbw-analyze: stale baseline entry (fixed? run "
                   "--fix-baseline): "
                << key << "\n";
    }
    std::cerr << "gridbw-analyze: " << report.files_scanned << " file(s), "
              << split.fresh.size() << " new finding(s), "
              << split.baselined.size() << " baselined, " << split.stale.size()
              << " stale\n";
    return split.fresh.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
