#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace gridbw::analyze {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when text[pos..pos+word) equals `word` with identifier boundaries.
bool word_at(const std::string& text, std::size_t pos, const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident(text[end]);
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// 1-based line of a byte offset, given sorted line-start offsets.
int line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

std::vector<std::size_t> line_starts_of(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::string join_code(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) out.push_back('\n');
    out += lines[i];
  }
  return out;
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Splits an identifier into '_'-delimited lowercase components.
std::vector<std::string> name_components(const std::string& name) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : name) {
    if (c == '_') {
      if (!current.empty()) parts.push_back(to_lower(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts.push_back(to_lower(current));
  return parts;
}

const std::set<std::string>& dimensioned_fragments() {
  static const std::set<std::string> kFragments = {
      "bw",  "bandwidth", "rate",     "vol", "volume", "bytes", "bps",
      "cap", "capacity",  "seconds",  "sec", "secs"};
  return kFragments;
}

const std::set<std::string>& dimensionless_fragments() {
  static const std::set<std::string> kFragments = {
      "fraction", "factor", "weight",    "cost",  "util",    "ratio",
      "eps",      "epsilon", "tol",      "tolerance", "share", "scale",
      "f",        "accept",  "success",  "guarantee", "prob"};
  return kFragments;
}

bool is_dimensioned_name(const std::string& name) {
  bool dimensioned = false;
  for (const std::string& part : name_components(name)) {
    if (dimensionless_fragments().count(part) != 0) return false;
    if (dimensioned_fragments().count(part) != 0) dimensioned = true;
  }
  return dimensioned;
}

/// Context shared by the per-file checks.
struct Scan {
  const SourceFile& file;
  const std::string& src_rel;      // path relative to src/
  const std::string& code;         // code lines joined
  const std::vector<std::size_t>& starts;  // line starts into `code`
  std::vector<Finding>* out;

  void report(std::size_t pos, const std::string& check, std::string message) const {
    report_line(line_of(starts, pos), check, std::move(message));
  }
  void report_line(int line, const std::string& check, std::string message) const {
    if (file.suppressed(line, check)) return;
    out->push_back(Finding{file.rel_path, line, check, std::move(message)});
  }
  [[nodiscard]] bool in_dir(const std::string& prefix) const {
    return src_rel.compare(0, prefix.size(), prefix) == 0;
  }
};

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

void check_layering(const Scan& scan) {
  const std::string from = module_of(scan.src_rel);
  for (std::size_t i = 0; i < scan.file.code_lines.size(); ++i) {
    const std::string& code_line = scan.file.code_lines[i];
    const std::size_t hash = code_line.find_first_not_of(" \t");
    if (hash == std::string::npos || code_line[hash] != '#') continue;
    const std::size_t kw = skip_ws(code_line, hash + 1);
    if (code_line.compare(kw, 7, "include") != 0) continue;
    // The stripper blanks string contents, so read the path from the raw
    // line (the directive itself survives stripping, proving it is code).
    const std::string& raw = scan.file.raw_lines[i];
    const std::size_t open = raw.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = raw.substr(open + 1, close - open - 1);
    if (target.find('/') == std::string::npos && target != "gridbw.hpp") continue;
    const int line = static_cast<int>(i) + 1;

    if (from.empty()) {
      scan.report_line(line, "layering",
                       "file is in an unknown module — add the directory to the "
                       "layering DAG in tools/gridbw_analyze/layering.cpp and "
                       "DESIGN.md §5f");
      return;  // one finding per unknown file is enough
    }
    // Carve-out: gridbw_obs may use the header-only id vocabulary.
    if (from == "obs" && target == "core/ids.hpp") continue;
    const std::string to = module_of(target);
    if (to.empty()) {
      scan.report_line(line, "layering",
                       "include of unknown module ('" + target +
                           "') — add it to the layering DAG in "
                           "tools/gridbw_analyze/layering.cpp");
      continue;
    }
    if (!layering_allows(from, to)) {
      scan.report_line(line, "layering",
                       "module '" + from + "' may not include '" + to + "' ('" +
                           target + "'); allowed modules: " +
                           layering_allowed_list(from));
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

/// Names of variables declared with an unordered container type in this file.
std::vector<std::string> unordered_vars(const std::string& code) {
  std::vector<std::string> vars;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const std::size_t token_end = pos + std::string(token).size();
      pos = token_end;
      std::size_t i = skip_ws(code, token_end);
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      if (i >= code.size()) continue;
      i = skip_ws(code, i + 1);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = skip_ws(code, i + 1);
      }
      std::size_t name_end = i;
      while (name_end < code.size() && is_ident(code[name_end])) ++name_end;
      if (name_end > i) vars.push_back(code.substr(i, name_end - i));
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

void check_unordered_iter(const Scan& scan) {
  // Members declared in the sibling header (Schedule::index_,
  // EventQueue::actions_) are iterable from the .cpp, so their declarations
  // count even though they live in another file.
  for (const std::string& var :
       unordered_vars(scan.code + "\n" + scan.file.companion_code)) {
    std::size_t pos = 0;
    while ((pos = scan.code.find(var, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += var.size();
      if (!word_at(scan.code, hit, var)) continue;
      const std::size_t after = skip_ws(scan.code, hit + var.size());
      const bool begin_call =
          scan.code.compare(after, 8, ".begin()") == 0 ||
          scan.code.compare(after, 9, ".cbegin()") == 0;
      // Range-for: `for (... : var)` — a ':' directly before the name with a
      // `for` opener earlier on the same line.
      bool range_for = false;
      std::size_t before = hit;
      while (before > 0 && std::isspace(static_cast<unsigned char>(
                               scan.code[before - 1])) != 0) {
        --before;
      }
      if (before > 0 && scan.code[before - 1] == ':' &&
          (before < 2 || scan.code[before - 2] != ':')) {
        const int line = line_of(scan.starts, hit);
        const std::string& code_line =
            scan.file.code_lines[static_cast<std::size_t>(line) - 1];
        range_for = code_line.find("for") != std::string::npos;
      }
      if (begin_call || range_for) {
        scan.report(hit, "unordered-iter",
                    "iteration over unordered container '" + var +
                        "' — order is unspecified and breaks byte-identical "
                        "traces/reports; iterate a sorted snapshot or an "
                        "ordered container (GRIDBW-ALLOW(unordered-iter) only "
                        "for provably order-independent reductions)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

void check_wall_clock(const Scan& scan) {
  // Measurement of the machine, not simulated time, is confined to the
  // experiment harness's timing tables and the obs sinks' opt-in stamps.
  if (scan.src_rel == "metrics/experiment.cpp" || scan.in_dir("obs/")) return;
  static const char* kClocks[] = {
      "std::chrono::system_clock", "std::chrono::steady_clock",
      "std::chrono::high_resolution_clock"};
  const std::string message =
      "wall-clock read in deterministic code — simulated time flows through "
      "TimePoint";
  for (const char* clock_name : kClocks) {
    std::size_t pos = 0;
    while ((pos = scan.code.find(clock_name, pos)) != std::string::npos) {
      scan.report(pos, "wall-clock", message);
      pos += std::string(clock_name).size();
    }
  }
  std::size_t pos = 0;
  while ((pos = scan.code.find("gettimeofday", pos)) != std::string::npos) {
    if (word_at(scan.code, pos, "gettimeofday")) {
      scan.report(pos, "wall-clock", message);
    }
    pos += 12;
  }
  pos = 0;
  while ((pos = scan.code.find("std::time", pos)) != std::string::npos) {
    const std::size_t end = pos + 9;
    const bool boundary = end >= scan.code.size() || !is_ident(scan.code[end]);
    const std::size_t after = skip_ws(scan.code, end);
    if (boundary && after < scan.code.size() && scan.code[after] == '(') {
      scan.report(pos, "wall-clock", message);
    }
    pos = end;
  }
  pos = 0;
  while ((pos = scan.code.find("clock", pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += 5;
    if (!word_at(scan.code, hit, "clock")) continue;
    std::size_t i = skip_ws(scan.code, hit + 5);
    if (i >= scan.code.size() || scan.code[i] != '(') continue;
    i = skip_ws(scan.code, i + 1);
    if (i < scan.code.size() && scan.code[i] == ')') {
      scan.report(hit, "wall-clock", message);
    }
  }
}

// ---------------------------------------------------------------------------
// rng-locality
// ---------------------------------------------------------------------------

void check_rng_locality(const Scan& scan) {
  if (scan.src_rel == "util/random.hpp" || scan.src_rel == "util/random.cpp") {
    return;
  }
  const std::string message =
      "random engine constructed outside util/random — derive a stream from "
      "gridbw::Rng so every experiment stays seed-deterministic";
  for (const char* token :
       {"std::mt19937", "std::minstd_rand", "std::random_device"}) {
    std::size_t pos = 0;
    while ((pos = scan.code.find(token, pos)) != std::string::npos) {
      scan.report(pos, "rng-locality", message);
      pos += std::string(token).size();
    }
  }
  for (const char* fn : {"rand", "srand"}) {
    std::size_t pos = 0;
    while ((pos = scan.code.find(fn, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += std::string(fn).size();
      if (!word_at(scan.code, hit, fn)) continue;
      const std::size_t after = skip_ws(scan.code, hit + std::string(fn).size());
      if (after < scan.code.size() && scan.code[after] == '(') {
        scan.report(hit, "rng-locality", message);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// stepfunction-hot-path
// ---------------------------------------------------------------------------

void check_stepfunction(const Scan& scan) {
  // The std::map-backed StepFunction is the reference implementation kept
  // for differential testing; hot paths use the flat TimelineProfile.
  if (scan.src_rel == "core/step_function.hpp" ||
      scan.src_rel == "core/step_function.cpp" ||
      scan.src_rel == "core/validate.cpp") {  // kReference differential engine
    return;
  }
  std::size_t pos = 0;
  while ((pos = scan.code.find("StepFunction", pos)) != std::string::npos) {
    if (word_at(scan.code, pos, "StepFunction")) {
      scan.report(pos, "stepfunction-hot-path",
                  "std::map-backed StepFunction outside the reference "
                  "implementation — hot paths use core/timeline_profile.hpp");
    }
    pos += 12;
  }
}

// ---------------------------------------------------------------------------
// float-format
// ---------------------------------------------------------------------------

/// Identifiers declared as double/float in this file (approximation: any
/// `double name` / `float name` declaration context).
std::set<std::string> float_decls(const std::string& code) {
  std::set<std::string> names;
  for (const char* type : {"double", "float"}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += std::string(type).size();
      if (!word_at(code, hit, type)) continue;
      std::size_t i = skip_ws(code, hit + std::string(type).size());
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = skip_ws(code, i + 1);
      }
      std::size_t end = i;
      while (end < code.size() && is_ident(code[end])) ++end;
      if (end > i) names.insert(code.substr(i, end - i));
    }
  }
  return names;
}

bool looks_float_expr(const std::string& expr, const std::set<std::string>& floats) {
  // An explicit cast to an integral type makes the formatted value exact and
  // deterministic, whatever fed the cast.
  const std::size_t cast = expr.find("static_cast<");
  if (cast != std::string::npos) {
    const std::size_t close = expr.find('>', cast);
    if (close != std::string::npos) {
      const std::string type = expr.substr(cast + 12, close - cast - 12);
      if (type.find("double") == std::string::npos &&
          type.find("float") == std::string::npos) {
        return false;
      }
    }
  }
  static const char* kAccessors[] = {
      "to_seconds", "to_minutes", "to_hours", "to_bytes",
      "to_bytes_per_second", "to_megabits_per_second", "to_gigabytes"};
  for (const char* accessor : kAccessors) {
    if (expr.find(accessor) != std::string::npos) return true;
  }
  // Float literal: digit '.' digit.
  for (std::size_t i = 1; i + 1 < expr.size(); ++i) {
    if (expr[i] == '.' &&
        std::isdigit(static_cast<unsigned char>(expr[i - 1])) != 0 &&
        std::isdigit(static_cast<unsigned char>(expr[i + 1])) != 0) {
      return true;
    }
  }
  // Any identifier in the expression declared double/float in this file.
  // Member accesses (x.value, x->value) are fields of some other type, not
  // the local declaration, so they do not count.
  std::size_t i = 0;
  while (i < expr.size()) {
    if (is_ident(expr[i]) && (i == 0 || !is_ident(expr[i - 1]))) {
      std::size_t end = i;
      while (end < expr.size() && is_ident(expr[end])) ++end;
      const bool member =
          (i >= 1 && expr[i - 1] == '.') ||
          (i >= 2 && expr[i - 2] == '-' && expr[i - 1] == '>');
      if (!member && floats.count(expr.substr(i, end - i)) != 0) return true;
      i = end;
    } else {
      ++i;
    }
  }
  return false;
}

void check_float_format(const Scan& scan) {
  std::size_t pos = 0;
  while ((pos = scan.code.find("std::setprecision", pos)) != std::string::npos) {
    scan.report(pos, "float-format",
                "stream setprecision — sticky, locale-coupled float "
                "formatting; use format_double (util/table.hpp for reports, "
                "obs sinks for traces)");
    pos += 17;
  }
  const std::set<std::string> floats = float_decls(scan.code);
  pos = 0;
  while ((pos = scan.code.find("std::to_string", pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += 14;
    std::size_t open = skip_ws(scan.code, hit + 14);
    if (open >= scan.code.size() || scan.code[open] != '(') continue;
    int depth = 0;
    std::size_t close = open;
    while (close < scan.code.size()) {
      if (scan.code[close] == '(') ++depth;
      if (scan.code[close] == ')') {
        --depth;
        if (depth == 0) break;
      }
      ++close;
    }
    if (close >= scan.code.size()) continue;
    const std::string arg = scan.code.substr(open + 1, close - open - 1);
    if (looks_float_expr(arg, floats)) {
      scan.report(hit, "float-format",
                  "std::to_string on a floating value — fixed 6-digit, "
                  "locale-dependent; use the shortest-round-trip "
                  "format_double helpers");
    }
  }
  // Inside the trace/export layer every float must take the shortest-
  // round-trip path; raw printf conversions are how drift sneaks in.
  if (scan.in_dir("obs/")) {
    for (std::size_t i = 0; i < scan.file.code_lines.size(); ++i) {
      if (scan.file.code_lines[i].find("printf") == std::string::npos) continue;
      const std::string& raw = scan.file.raw_lines[i];
      for (std::size_t j = 0; j + 1 < raw.size(); ++j) {
        if (raw[j] != '%') continue;
        std::size_t k = j + 1;
        while (k < raw.size() &&
               (std::isdigit(static_cast<unsigned char>(raw[k])) != 0 ||
                raw[k] == '.' || raw[k] == '-' || raw[k] == '+' ||
                raw[k] == '*' || raw[k] == '#' || raw[k] == ' ')) {
          ++k;
        }
        if (k < raw.size() && std::string("fFeEgGaA").find(raw[k]) !=
                                  std::string::npos) {
          scan.report_line(static_cast<int>(i) + 1, "float-format",
                          "raw printf float conversion in the trace/export "
                          "layer — use format_double (std::to_chars shortest "
                          "round-trip) so traces stay byte-identical");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unit-safety
// ---------------------------------------------------------------------------

void check_unit_safety(const Scan& scan) {
  const bool is_header =
      scan.src_rel.size() > 4 &&
      scan.src_rel.compare(scan.src_rel.size() - 4, 4, ".hpp") == 0;
  if (!is_header || scan.src_rel == "util/quantity.hpp") return;
  std::size_t pos = 0;
  while ((pos = scan.code.find("double", pos)) != std::string::npos) {
    const std::size_t hit = pos;
    pos += 6;
    if (!word_at(scan.code, hit, "double")) continue;
    std::size_t i = skip_ws(scan.code, hit + 6);
    while (i < scan.code.size() && (scan.code[i] == '&' || scan.code[i] == '*')) {
      i = skip_ws(scan.code, i + 1);
    }
    std::size_t end = i;
    while (end < scan.code.size() && is_ident(scan.code[end])) ++end;
    if (end == i) continue;
    const std::string name = scan.code.substr(i, end - i);
    if (!is_dimensioned_name(name)) continue;
    const std::size_t after = skip_ws(scan.code, end);
    const bool is_function = after < scan.code.size() && scan.code[after] == '(';
    scan.report(hit, "unit-safety",
                std::string{is_function
                    ? "raw double return '" : "raw double '"} + name +
                    (is_function ? "()'" : "'") +
                    " denotes a dimensioned quantity in a public header — "
                    "use Bandwidth/Volume/Duration/TimePoint from "
                    "util/quantity.hpp");
  }
}

// ---------------------------------------------------------------------------
// hot-path
// ---------------------------------------------------------------------------

void check_hot_path(const Scan& scan) {
  for (std::size_t i = 0; i < scan.file.raw_lines.size(); ++i) {
    // The annotation is a standalone comment line (`// gridbw:hot`), so
    // prose that merely mentions the marker does not annotate anything.
    const std::string& raw = scan.file.raw_lines[i];
    const std::size_t first = raw.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const std::size_t last = raw.find_last_not_of(" \t\r");
    if (raw.compare(first, last - first + 1, "// gridbw:hot") != 0) continue;
    // The annotated function body: first '{' after the annotation line,
    // matched to its closing brace.
    const std::size_t search_from =
        i + 1 < scan.starts.size() ? scan.starts[i + 1] : scan.code.size();
    std::size_t open = scan.code.find('{', search_from);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    while (close < scan.code.size()) {
      if (scan.code[close] == '{') ++depth;
      if (scan.code[close] == '}') {
        --depth;
        if (depth == 0) break;
      }
      ++close;
    }
    const std::string body = scan.code.substr(open, close - open);
    struct Token {
      const char* token;
      bool word;
      const char* what;
    };
    static const Token kTokens[] = {
        {"throw", true, "throw"},
        {"new", true, "allocation (new)"},
        {"make_unique", true, "allocation (make_unique)"},
        {"make_shared", true, "allocation (make_shared)"},
        {"malloc", true, "allocation (malloc)"},
        {"calloc", true, "allocation (calloc)"},
        {"realloc", true, "allocation (realloc)"},
        {"dynamic_cast", true, "dynamic_cast"},
        {"->record(", false, "virtual sink call (TraceSink::record)"},
    };
    for (const Token& t : kTokens) {
      std::size_t pos = 0;
      const std::string token = t.token;
      while ((pos = body.find(token, pos)) != std::string::npos) {
        const std::size_t hit = pos;
        pos += token.size();
        if (t.word && !word_at(body, hit, token)) continue;
        scan.report(open + hit, "hot-path",
                    std::string{t.what} +
                        " inside a gridbw:hot function — hoist it out of the "
                        "hot path or drop the annotation");
      }
    }
  }
}

}  // namespace

const std::vector<CheckInfo>& check_catalogue() {
  static const std::vector<CheckInfo> kCatalogue = {
      {"layering",
       "#include edges must follow the module DAG (DESIGN.md §5f)"},
      {"unordered-iter",
       "no iteration over unordered containers (unspecified order)"},
      {"wall-clock",
       "no real-time reads outside metrics/experiment.cpp and src/obs/"},
      {"rng-locality",
       "random engines constructed only inside util/random"},
      {"stepfunction-hot-path",
       "reference StepFunction stays out of hot paths (use TimelineProfile)"},
      {"float-format",
       "float formatting goes through the shortest-round-trip helpers"},
      {"unit-safety",
       "no raw dimensioned doubles (*_bps/*_bytes/*_sec) in public headers"},
      {"hot-path",
       "no throw/allocation/virtual-sink in functions marked // gridbw:hot"},
      {"lock-order",
       "nested mutex acquisitions follow declared gridbw:lock-order contracts"},
      {"guarded-by",
       "gridbw:guarded_by fields only touched with the named mutex held"},
      {"cv-wait-predicate",
       "condition_variable waits always use the predicate overload"},
      {"lock-scope-hygiene",
       "no throw/I-O/sink-call/blocking submit-join-wait while a lock is held"},
      {"atomic-discipline",
       "raw std::atomic and weak memory orders confined to sanctioned modules"},
      // The interprocedural family (callgraph.cpp): only tree scans run
      // these — a single file has no call graph to propagate over.
      {"hot-propagation",
       "everything reachable from a gridbw:hot body is transitively hot-clean"},
      {"requires-context",
       "gridbw:requires(mu) functions only called with mu held or propagated"},
      {"hot-call-unresolved",
       "virtual/std::function calls from hot contexts carry a GRIDBW-ALLOW"},
  };
  return kCatalogue;
}

std::vector<Finding> analyze_prepared(const SourceFile& file,
                                      const std::string& src_rel_path,
                                      const std::string& code,
                                      const std::vector<std::size_t>& starts,
                                      const ScopeInfo& scope,
                                      const Options& options) {
  std::vector<Finding> findings;
  const Scan scan{file, src_rel_path, code, starts, &findings};
  const auto enabled = [&](const char* id) {
    return options.checks.empty() || options.checks.count(id) != 0;
  };
  if (enabled("layering")) check_layering(scan);
  if (enabled("unordered-iter")) check_unordered_iter(scan);
  if (enabled("wall-clock")) check_wall_clock(scan);
  if (enabled("rng-locality")) check_rng_locality(scan);
  if (enabled("stepfunction-hot-path")) check_stepfunction(scan);
  if (enabled("float-format")) check_float_format(scan);
  if (enabled("unit-safety")) check_unit_safety(scan);
  if (enabled("hot-path")) check_hot_path(scan);
  run_concurrency_checks(file, code, starts, scope, options, &findings);
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::vector<Finding> analyze_file(const SourceFile& file,
                                  const std::string& src_rel_path,
                                  const Options& options) {
  const std::string code = join_code(file.code_lines);
  const std::vector<std::size_t> starts = line_starts_of(code);
  const ScopeInfo scope = build_scope_info(file, code, starts);
  return analyze_prepared(file, src_rel_path, code, starts, scope, options);
}

}  // namespace gridbw::analyze
