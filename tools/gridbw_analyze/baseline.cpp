#include "analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gridbw::analyze {

namespace {

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"gridbw-analyze: cannot read " + path.string()};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string baseline_key(const Finding& finding, const SourceFile& file) {
  std::string line_text;
  if (finding.line >= 1 &&
      static_cast<std::size_t>(finding.line) <= file.raw_lines.size()) {
    line_text = trim(file.raw_lines[static_cast<std::size_t>(finding.line) - 1]);
  }
  return finding.check + "|" + finding.path + "|" + line_text;
}

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  for (const std::string& raw : split_lines(text)) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    ++baseline[line];
  }
  return baseline;
}

BaselineSplit apply_baseline(const std::vector<Finding>& findings,
                             const std::vector<std::string>& keys,
                             const Baseline& baseline) {
  BaselineSplit split;
  Baseline remaining = baseline;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto it = remaining.find(keys[i]);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      split.baselined.push_back(findings[i]);
    } else {
      split.fresh.push_back(findings[i]);
    }
  }
  for (const auto& [key, count] : remaining) {
    for (int i = 0; i < count; ++i) split.stale.push_back(key);
  }
  return split;
}

std::string render_baseline(const std::vector<std::string>& keys) {
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::string out =
      "# gridbw-analyze baseline: tolerated pre-existing findings.\n"
      "# Format: check|path|trimmed source line. Regenerate with\n"
      "#   gridbw_analyze --root . --baseline <this file> --fix-baseline\n"
      "# Policy: this file should shrink to empty; new code never adds to it.\n";
  for (const std::string& key : sorted) {
    out += key;
    out.push_back('\n');
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"path\": \"" + json_escape(f.path) + "\", \"line\": " +
           std::to_string(f.line) + ", \"check\": \"" + json_escape(f.check) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
    if (i + 1 < findings.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "]\n";
  return out;
}

TreeReport analyze_tree(const std::string& root, const Options& options) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path{root} / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error{"gridbw-analyze: no src/ directory under " + root};
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator{src}) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  TreeReport report;
  report.files_scanned = paths.size();
  // Files arrive sorted and analyze_file sorts within a file, so the
  // concatenation is already in deterministic (path, line, check) order.
  for (const fs::path& path : paths) {
    const std::string src_rel = fs::relative(path, src).generic_string();
    SourceFile file = make_source("src/" + src_rel, read_file(path));
    if (path.extension() == ".cpp") {
      const fs::path sibling = fs::path{path}.replace_extension(".hpp");
      if (fs::is_regular_file(sibling)) {
        file.companion_code = strip_comments_and_strings(read_file(sibling));
      }
    }
    for (Finding& finding : analyze_file(file, src_rel, options)) {
      report.keys.push_back(baseline_key(finding, file));
      report.findings.push_back(std::move(finding));
    }
  }
  return report;
}

}  // namespace gridbw::analyze
