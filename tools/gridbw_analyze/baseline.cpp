#include "analyze.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "callgraph.hpp"
#include "symbols.hpp"
#include "util/thread_pool.hpp"

namespace gridbw::analyze {

namespace {

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"gridbw-analyze: cannot read " + path.string()};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string baseline_key(const Finding& finding, const SourceFile& file) {
  std::string line_text;
  if (finding.line >= 1 &&
      static_cast<std::size_t>(finding.line) <= file.raw_lines.size()) {
    line_text = trim(file.raw_lines[static_cast<std::size_t>(finding.line) - 1]);
  }
  return finding.check + "|" + finding.path + "|" + line_text;
}

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  for (const std::string& raw : split_lines(text)) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    ++baseline[line];
  }
  return baseline;
}

BaselineSplit apply_baseline(const std::vector<Finding>& findings,
                             const std::vector<std::string>& keys,
                             const Baseline& baseline) {
  BaselineSplit split;
  Baseline remaining = baseline;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto it = remaining.find(keys[i]);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      split.baselined.push_back(findings[i]);
    } else {
      split.fresh.push_back(findings[i]);
    }
  }
  for (const auto& [key, count] : remaining) {
    for (int i = 0; i < count; ++i) split.stale.push_back(key);
  }
  return split;
}

std::string render_baseline(const std::vector<std::string>& keys) {
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::string out =
      "# gridbw-analyze baseline: tolerated pre-existing findings.\n"
      "# Format: check|path|trimmed source line. Regenerate with\n"
      "#   gridbw_analyze --root . --baseline <this file> --fix-baseline\n"
      "# Policy: this file should shrink to empty; new code never adds to it.\n";
  for (const std::string& key : sorted) {
    out += key;
    out.push_back('\n');
  }
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"path\": \"" + json_escape(f.path) + "\", \"line\": " +
           std::to_string(f.line) + ", \"check\": \"" + json_escape(f.check) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
    if (i + 1 < findings.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "]\n";
  return out;
}

const std::vector<ScanRoot>& scan_roots() {
  static const std::vector<ScanRoot> kRoots = {
      {"src", {}},
      // tools: host-side utilities — library layering and the unit-typed
      // header vocabulary do not apply outside the library tree.
      {"tools", {"layering", "unit-safety"}},
      // bench: measures the machine and prints human-facing tables, and the
      // reference StepFunction is fair game in differential harnesses.
      {"bench",
       {"layering", "wall-clock", "float-format", "stepfunction-hot-path",
        "unit-safety"}},
      // tests: exercise forbidden constructs on purpose (reference
      // StepFunction differentials, raw atomics in TSan stress tests).
      {"tests",
       {"layering", "float-format", "stepfunction-hot-path", "unit-safety",
        "atomic-discipline"}},
  };
  return kRoots;
}

namespace {

std::string join_code(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) out.push_back('\n');
    out += lines[i];
  }
  return out;
}

std::vector<std::size_t> line_starts_of(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

/// Runs `fn(i)` for every index, serially or over the pool.
template <typename Fn>
void for_each_index(std::size_t count, std::size_t threads, Fn&& fn) {
  if (threads == 1 || count < 2) {
    gridbw::serial_for_index(count, fn);
  } else {
    gridbw::ThreadPool pool{threads};
    gridbw::parallel_for_index(pool, count, fn);
  }
}

}  // namespace

TreeReport analyze_loaded(const std::vector<LoadedFile>& files,
                          const Options& options) {
  // Effective per-root check set: (user selection or the full catalogue)
  // minus the root's skip profile. An empty result means "scan nothing
  // here" — it must not fall through to Options' empty-means-all default.
  std::vector<Options> per_root;
  for (const ScanRoot& scan_root : scan_roots()) {
    Options effective;
    effective.threads = options.threads;
    if (options.checks.empty()) {
      for (const CheckInfo& check : check_catalogue()) {
        if (scan_root.skip.count(check.id) == 0) {
          effective.checks.insert(check.id);
        }
      }
    } else {
      for (const std::string& id : options.checks) {
        if (scan_root.skip.count(id) == 0) effective.checks.insert(id);
      }
    }
    per_root.push_back(std::move(effective));
  }

  // Phase 1 (parallel): per-file tables — stripped code, scope model,
  // symbol index, call sites. Entries stay in `files` order, so the serial
  // merge below sees the same sequence regardless of thread count.
  std::vector<FileEntry> entries(files.size());
  for_each_index(files.size(), options.threads, [&](std::size_t i) {
    const LoadedFile& loaded = files[i];
    FileEntry& entry = entries[i];
    entry.rel = loaded.rel;
    entry.root_rel = loaded.root_rel;
    entry.root_index = loaded.root_index;
    entry.file = make_source(loaded.rel, loaded.text);
    if (loaded.has_companion) attach_companion(entry.file, loaded.companion);
    entry.code = join_code(entry.file.code_lines);
    entry.starts = line_starts_of(entry.code);
    entry.scope = build_scope_info(entry.file, entry.code, entry.starts);
    entry.symbols =
        extract_symbols(entry.file, entry.code, entry.starts, entry.scope);
    entry.calls = extract_calls(entry.code, entry.scope);
  });

  // Interprocedural passes: serial over the merged tables (deterministic by
  // construction — entries, calls, and symbol refs all iterate in order).
  std::vector<const Options*> per_entry_options(entries.size(), nullptr);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    per_entry_options[i] = &per_root[entries[i].root_index];
  }
  const InterprocReport interproc =
      run_interprocedural_checks(entries, per_entry_options);

  // Phase 2 (parallel): the intraprocedural catalogue per file, reusing the
  // phase-1 artifacts, plus that file's interprocedural findings; sorted and
  // keyed per slot, merged in file order.
  struct Slot {
    std::vector<Finding> findings;
    std::vector<std::string> keys;
    std::vector<std::string> stale_allows;
  };
  std::vector<Slot> slots(entries.size());
  for_each_index(entries.size(), options.threads, [&](std::size_t i) {
    const FileEntry& entry = entries[i];
    const Options& effective = per_root[entry.root_index];
    std::vector<Finding> findings;
    if (!effective.checks.empty()) {
      findings = analyze_prepared(entry.file, entry.root_rel, entry.code,
                                  entry.starts, entry.scope, effective);
    }
    for (const Finding& finding : interproc.per_file[i]) {
      findings.push_back(finding);
    }
    std::sort(findings.begin(), findings.end());
    for (Finding& finding : findings) {
      slots[i].keys.push_back(baseline_key(finding, entry.file));
      slots[i].findings.push_back(std::move(finding));
    }
    slots[i].stale_allows = stale_allows_in(entry.file);
  });

  TreeReport report;
  report.files_scanned = entries.size();
  report.call_edges_resolved = interproc.edges_resolved;
  report.call_edges_unresolved = interproc.edges_unresolved;
  for (Slot& slot : slots) {
    for (std::size_t k = 0; k < slot.findings.size(); ++k) {
      report.findings.push_back(std::move(slot.findings[k]));
      report.keys.push_back(std::move(slot.keys[k]));
    }
    for (std::string& stale : slot.stale_allows) {
      report.stale_allows.push_back(std::move(stale));
    }
  }
  return report;
}

TreeReport analyze_tree(const std::string& root, const Options& options) {
  namespace fs = std::filesystem;
  const fs::path root_path{root};
  if (!fs::is_directory(root_path / "src")) {
    throw std::runtime_error{"gridbw-analyze: no src/ directory under " + root};
  }

  std::vector<LoadedFile> files;
  for (std::size_t r = 0; r < scan_roots().size(); ++r) {
    const ScanRoot& scan_root = scan_roots()[r];
    const fs::path dir = root_path / scan_root.dir;
    if (!fs::is_directory(dir)) continue;  // only src/ is mandatory
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator{dir};
         it != fs::recursive_directory_iterator{}; ++it) {
      // Golden-fixture trees contain deliberately bad code.
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      LoadedFile loaded;
      loaded.root_rel = fs::relative(path, dir).generic_string();
      loaded.rel = std::string{scan_root.dir} + "/" + loaded.root_rel;
      loaded.root_index = r;
      loaded.text = read_file(path);
      if (path.extension() == ".cpp") {
        const fs::path sibling = fs::path{path}.replace_extension(".hpp");
        if (fs::is_regular_file(sibling)) {
          loaded.companion = read_file(sibling);
          loaded.has_companion = true;
        }
      }
      files.push_back(std::move(loaded));
    }
  }
  return analyze_loaded(files, options);
}

void write_file_atomic(const std::string& path, const std::string& body) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      throw std::runtime_error{"gridbw-analyze: cannot write " + tmp};
    }
    out << body;
    out.flush();
    if (!out) {
      throw std::runtime_error{"gridbw-analyze: short write to " + tmp};
    }
  }
  std::error_code error;
  fs::rename(tmp, path, error);
  if (error) {
    fs::remove(tmp, error);
    throw std::runtime_error{"gridbw-analyze: cannot rename " + tmp + " -> " +
                             path};
  }
}

const char* usage_text() {
  return
      "usage: gridbw_analyze --root DIR [options]\n"
      "\n"
      "  --root DIR        repository root; scans src/ (all checks) plus\n"
      "                    tools/, bench/, and tests/ under per-root check\n"
      "                    profiles (fixtures/ directories are skipped)\n"
      "  --baseline FILE   tolerate findings listed in FILE (check|path|line)\n"
      "  --fix-baseline    rewrite FILE with the current findings and exit 0\n"
      "  --checks a,b,...  run only the listed checks (default: all)\n"
      "  --threads N       scan worker threads (0 = hardware default,\n"
      "                    1 = serial; findings are identical either way)\n"
      "  --json            print the findings as a JSON report (with\n"
      "                    files_scanned and scan_ms) instead of text\n"
      "  --json-out FILE   also write the JSON report to FILE\n"
      "  --summary         print new findings grouped by check, diff-style\n"
      "  --list-checks     print the check catalogue and exit\n";
}

}  // namespace gridbw::analyze
