// longlived_planning — the *long-lived* side of the paper's model (§2.1):
// persistent instrument streams (telescope feeds, detector pipelines) that
// hold a fixed rate indefinitely. For uniform rates the optimal assignment
// is polynomial (§3); this example plans a stream layout with the max-flow
// optimum, compares it with what first-come-first-served would have kept,
// and prints the per-port budget the plan consumes.
//
// Run:  ./longlived_planning [--seed=N] [--streams=K] [--rate-mbps=R]

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto streams = static_cast<std::size_t>(flags.get_int("streams", 60));
  const Bandwidth rate =
      Bandwidth::megabytes_per_second(flags.get_double("rate-mbps", 250.0));

  const auto topology = control::OverlayTopology::grid5000_like(8);
  const Network network = topology.data_plane();

  // Stream demands: skewed toward two popular sites (the archive and the
  // main compute centre), which is where greedy placement goes wrong.
  Rng rng{seed};
  std::vector<longlived::LongLivedRequest> demands;
  for (RequestId id = 1; id <= streams; ++id) {
    const bool hot = rng.bernoulli(0.5);
    const auto ingress =
        IngressId{static_cast<std::size_t>(rng.uniform_int(0, 7))};
    const auto egress = hot ? EgressId{static_cast<std::size_t>(rng.uniform_int(0, 1))}
                            : EgressId{static_cast<std::size_t>(rng.uniform_int(2, 7))};
    demands.push_back(longlived::LongLivedRequest{id, ingress, egress, rate});
  }

  const auto greedy = longlived::schedule_greedy(network, demands);
  const auto optimal = longlived::schedule_uniform_optimal(network, demands, rate);

  std::cout << "persistent streams at " << to_string(rate) << ": " << streams
            << " demanded\n";
  std::cout << "greedy placement     : " << greedy.accepted_count() << " carried\n";
  std::cout << "optimal placement    : " << optimal.accepted_count()
            << " carried (max-flow, §3 polynomial case)\n";

  if (!longlived::is_feasible(network, demands, optimal.accepted)) {
    std::cerr << "optimal placement violates a port budget\n";
    return 1;
  }

  // Per-egress budget under the optimal plan.
  std::vector<std::size_t> per_egress(network.egress_count(), 0);
  for (const RequestId id : optimal.accepted) {
    per_egress[demands[id - 1].egress.value] += 1;
  }
  Table table{{"site", "streams in", "egress budget used"}};
  for (std::size_t e = 0; e < per_egress.size(); ++e) {
    const double used = static_cast<double>(per_egress[e]) * rate.to_bytes_per_second();
    table.add_row({topology.site(e).name, std::to_string(per_egress[e]),
                   format_double(
                       used / network.egress_capacity(EgressId{e}).to_bytes_per_second(),
                       2)});
  }
  table.print(std::cout);
  std::cout << "The optimum shifts streams away from saturated sites; greedy keeps\n"
               "whatever arrived first and strands capacity elsewhere.\n";
  return 0;
}
