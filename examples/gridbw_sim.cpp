// gridbw_sim — the full command-line simulator: generate (or load) a
// workload trace, run any scheduler by textual spec, report the paper's
// metrics, and optionally export the trace/schedule and an ASCII Gantt of
// port occupation.
//
//   ./gridbw_sim --scheduler=window:step=400,f=0.8
//                [--interarrival=2] [--horizon=1200] [--slack=4]
//                [--ports=10] [--capacity-gbps=1] [--seed=42]
//                [--trace-in=trace.csv] [--trace-out=trace.csv]
//                [--schedule-out=schedule.csv] [--gantt]
//                [--config=sim.ini] [--retries=N] [--retry-backoff=60]
//                [--compact]
//
// With --trace-in, the workload is replayed from disk instead of generated,
// so different schedulers can be compared on the byte-identical trace.
// With --config, defaults are read from an INI file ([workload] ports,
// capacity-gbps, interarrival, horizon, slack, seed; [scheduler] spec,
// retries, retry-backoff); command-line flags override the file.
// With --retries=N (N > 1), the scheduler spec is ignored and the workload
// runs through GREEDY with client resubmission (§2.3 "try later").

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};

  if (flags.get_bool("help", false)) {
    std::cout << "gridbw_sim — schedule a bulk-transfer workload\n\n"
              << heuristics::scheduler_grammar();
    return 0;
  }

  // Layered configuration: built-in defaults < INI file < command line.
  Config config;
  if (flags.has("config")) {
    config = Config::parse_file(flags.get_string("config", ""));
  }
  auto setting_double = [&](const std::string& flag, const std::string& dotted,
                            double fallback) {
    return flags.has(flag) ? flags.get_double(flag, fallback)
                           : config.get_double(dotted, fallback);
  };
  auto setting_int = [&](const std::string& flag, const std::string& dotted,
                         std::int64_t fallback) {
    return flags.has(flag) ? flags.get_int(flag, fallback)
                           : config.get_int(dotted, fallback);
  };

  const auto ports =
      static_cast<std::size_t>(setting_int("ports", "workload.ports", 10));
  const Network network = Network::uniform(
      ports, ports,
      Bandwidth::gigabytes_per_second(
          setting_double("capacity-gbps", "workload.capacity-gbps", 1.0)));

  // Workload: from trace or generated.
  std::vector<Request> requests;
  if (flags.has("trace-in")) {
    requests = workload::read_trace_file(flags.get_string("trace-in", ""));
    std::cout << "loaded " << requests.size() << " requests from trace\n";
  } else {
    workload::WorkloadSpec spec;
    spec.ingress_count = ports;
    spec.egress_count = ports;
    spec.mean_interarrival = Duration::seconds(
        setting_double("interarrival", "workload.interarrival", 2.0));
    spec.horizon =
        Duration::seconds(setting_double("horizon", "workload.horizon", 1200.0));
    const double slack = setting_double("slack", "workload.slack", 4.0);
    spec.slack = slack <= 1.0 ? workload::SlackLaw::rigid()
                              : workload::SlackLaw::flexible(1.0, slack);
    Rng rng{static_cast<std::uint64_t>(setting_int("seed", "workload.seed", 42))};
    requests = workload::generate(spec, rng);
    std::cout << "generated " << requests.size() << " requests (expected load "
              << format_double(workload::expected_offered_load(spec, network), 2)
              << ")\n";
  }
  if (flags.has("trace-out")) {
    workload::write_trace_file(flags.get_string("trace-out", ""), requests);
  }

  // Scheduler by spec — or GREEDY-with-retries when --retries > 1.
  const std::string spec_text =
      flags.has("scheduler")
          ? flags.get_string("scheduler", "")
          : config.get_string("scheduler.spec", "window:step=400,f=0.8");
  const auto retries = static_cast<std::size_t>(
      setting_int("retries", "scheduler.retries", 1));

  std::string scheduler_name;
  ScheduleResult result;
  std::vector<Request> effective = requests;
  if (retries > 1) {
    heuristics::RetryPolicy retry;
    retry.max_attempts = retries;
    retry.initial_backoff = Duration::seconds(
        setting_double("retry-backoff", "scheduler.retry-backoff", 60.0));
    auto out = heuristics::schedule_greedy_with_retries(
        network, requests, heuristics::BandwidthPolicy::fraction_of_max(0.8), retry);
    scheduler_name = "greedy/f=0.80 + " + std::to_string(retries) + " attempts";
    result = std::move(out.result);
    effective = std::move(out.effective_requests);
    std::cout << "retries issued     : " << out.retries_issued << " ("
              << out.accepted_on_retry << " accepted on retry)\n";
  } else {
    heuristics::NamedScheduler scheduler = [&] {
      try {
        return heuristics::parse_scheduler(spec_text);
      } catch (const std::invalid_argument& e) {
        std::cerr << e.what() << "\n\n" << heuristics::scheduler_grammar();
        std::exit(2);
      }
    }();
    scheduler_name = scheduler.name;
    result = scheduler.run(network, requests);
  }

  if (flags.get_bool("compact", false)) {
    auto compacted = heuristics::compact_schedule(network, effective, result.schedule,
                                                  {Duration::seconds(10)});
    std::cout << "compaction         : " << compacted.moved << " transfers advanced by "
              << to_string(compacted.total_advance) << " total\n";
    result.schedule = std::move(compacted.schedule);
  }

  const ValidationReport report = validate_schedule(network, effective, result.schedule);

  std::cout << "scheduler          : " << scheduler_name << "\n";
  std::cout << "schedule validity  : " << (report.ok() ? "valid" : report.to_string())
            << "\n";
  std::cout << "accepted           : " << result.accepted_count() << " / "
            << requests.size() << " (rate "
            << format_double(result.accept_rate(), 4) << ")\n";
  std::cout << "resource util §2.2 : "
            << format_double(
                   metrics::resource_util_paper(network, requests, result.schedule), 4)
            << "\n";
  const auto stretch = metrics::stretch_stats(requests, result.schedule);
  if (stretch.count() > 0) {
    std::cout << "stretch            : mean "
              << format_double(stretch.mean(), 2) << ", max "
              << format_double(stretch.max(), 2) << "\n";
  }
  const auto wait = metrics::start_delay_stats(requests, result.schedule);
  if (wait.count() > 0) {
    std::cout << "start delay        : mean " << format_double(wait.mean(), 1)
              << " s, max " << format_double(wait.max(), 1) << " s\n";
  }

  // Distribution of granted rates, as a histogram over MB/s.
  Histogram rates{0.0, 1000.0, 10};
  for (const Assignment& a : result.schedule.assignments()) {
    rates.add(a.bw.to_megabytes_per_second());
  }
  if (rates.total_count() > 0) {
    std::cout << "\ngranted rates (MB/s):\n" << rates.render(36);
  }

  if (flags.has("schedule-out")) {
    write_schedule_file(flags.get_string("schedule-out", ""), result.schedule);
    std::cout << "schedule written to " << flags.get_string("schedule-out", "") << "\n";
  }

  if (flags.get_bool("gantt", false) && !requests.empty()) {
    TimePoint first = TimePoint::infinity();
    TimePoint last = TimePoint::origin();
    for (const Request& r : requests) {
      first = min(first, r.release);
      last = max(last, r.release);
    }
    std::cout << "\ningress occupation over the arrival horizon:\n"
              << render_ingress_gantt(network, requests, result.schedule, first,
                                      last + Duration::seconds(1), 72);
  }
  return report.ok() ? 0 : 1;
}
