// tuning_explorer — an interactive-grade CLI for the grid manager's main
// knob (§2.3/§5.3): sweep the tuning factor f and the offered load, and see
// the accept-rate / transfer-speed trade-off on your own parameters.
//
// Run:  ./tuning_explorer --f=0.2,0.5,0.8,1.0 --interarrival=1,5,15
//                         [--step=400] [--reps=4] [--seed=N]

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 4));
  const double step = flags.get_double("step", 400.0);
  const auto fs = flags.get_double_list("f", {0.2, 0.5, 0.8, 1.0});
  const auto interarrivals = flags.get_double_list("interarrival", {1.0, 5.0, 15.0});

  metrics::ExperimentConfig config;
  config.replications = reps;
  config.base_seed = seed;

  Table table{{"interarrival_s", "f", "accept rate", "#guaranteed", "mean stretch",
               "mean wait s"}};
  for (const double ia : interarrivals) {
    const auto scenario =
        workload::paper_flexible(Duration::seconds(ia), Duration::seconds(2000), 4.0);
    for (const double f : fs) {
      heuristics::WindowOptions options;
      options.step = Duration::seconds(step);
      options.policy = heuristics::BandwidthPolicy::fraction_of_max(f);

      const auto stats = metrics::run_replicated(config, [&](Rng& rng, std::size_t) {
        const auto requests = workload::generate(scenario.spec, rng);
        const auto result =
            heuristics::schedule_flexible_window(scenario.network, requests, options);
        return metrics::MetricBag{
            {"accept", metrics::accept_rate(requests, result.schedule)},
            {"guaranteed",
             static_cast<double>(metrics::guaranteed_count(requests, result.schedule, f))},
            {"stretch", metrics::stretch_stats(requests, result.schedule).mean()},
            {"wait", metrics::start_delay_stats(requests, result.schedule).mean()}};
      });
      table.add_row({format_double(ia, 1), format_double(f, 2),
                     format_mean_ci(metrics::metric(stats, "accept")),
                     format_double(metrics::metric(stats, "guaranteed").mean(), 1),
                     format_double(metrics::metric(stats, "stretch").mean(), 2),
                     format_double(metrics::metric(stats, "wait").mean(), 1)});
    }
  }
  std::cout << "WINDOW(" << step << ") tuning-factor exploration "
            << "(every accepted request is guaranteed f x MaxRate):\n";
  table.print(std::cout);
  std::cout << "Lower f -> more accepted but slower transfers; pick the row that\n"
               "matches your infrastructure's workload (paper §2.3).\n";
  return 0;
}
