// datagrid_campaign — the workload the paper's introduction motivates: a
// data-grid collaboration replicating experiment datasets (hundreds of GB
// to 1 TB) between storage and computing sites overnight.
//
// Eight sites push replication requests over a 6-hour window. The example
// compares three operating points the grid manager could choose:
//
//   * greedy + MinRate      (accept as much as possible, slowest transfers)
//   * WINDOW(600) + f = 0.8 (batched admission, 80% host-rate guarantee)
//   * WINDOW(600) + f = 1.0 (full-rate transfers, fastest completion)
//
// and prints accept rate, utilization, mean stretch, and per-site traffic,
// all on the exact same request trace.
//
// Run:  ./datagrid_campaign [--seed=N] [--hours=H]

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double hours = flags.get_double("hours", 6.0);

  // Eight Grid'5000-like sites; each site's access point is one ingress and
  // one egress port of the data plane.
  const auto topology = control::OverlayTopology::grid5000_like(8);
  const Network network = topology.data_plane();

  // Dataset replication requests: large volumes only (100 GB .. 1 TB),
  // submitted every ~90 s on average, deadline up to 3x the fastest copy.
  std::vector<Volume> datasets;
  for (int gb = 100; gb <= 900; gb += 100) datasets.push_back(Volume::gigabytes(gb));
  datasets.push_back(Volume::terabytes(1));

  workload::WorkloadSpec spec;
  spec.ingress_count = network.ingress_count();
  spec.egress_count = network.egress_count();
  spec.volumes = workload::VolumeLaw{datasets};
  spec.mean_interarrival = Duration::seconds(90);
  spec.horizon = Duration::hours(hours);
  spec.min_host_rate = Bandwidth::megabytes_per_second(50);
  spec.max_host_rate = Bandwidth::gigabytes_per_second(1);
  spec.slack = workload::SlackLaw::flexible(1.2, 3.0);

  Rng rng{seed};
  const auto requests = workload::generate(spec, rng);
  std::cout << "campaign: " << requests.size() << " replication requests over "
            << hours << " h, offered load "
            << format_double(workload::offered_load(requests, network), 2) << "\n\n";

  struct OperatingPoint {
    std::string name;
    heuristics::NamedScheduler scheduler;
  };
  heuristics::WindowOptions w08;
  w08.step = Duration::seconds(600);
  w08.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
  heuristics::WindowOptions w10 = w08;
  w10.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);

  const std::vector<OperatingPoint> points{
      {"greedy + MinRate",
       heuristics::make_greedy(heuristics::BandwidthPolicy::min_rate())},
      {"WINDOW(600) + f=0.8", heuristics::make_window(w08)},
      {"WINDOW(600) + f=1.0", heuristics::make_window(w10)},
  };

  Table table{{"operating point", "accept", "util (§2.2)", "mean stretch",
               "mean wait s"}};
  for (const auto& point : points) {
    const auto result = point.scheduler.run(network, requests);
    const auto validation = validate_schedule(network, requests, result.schedule);
    if (!validation.ok()) {
      std::cerr << point.name << " produced an invalid schedule:\n"
                << validation.to_string();
      return 1;
    }
    table.add_row(
        {point.name, format_double(metrics::accept_rate(requests, result.schedule), 3),
         format_double(metrics::resource_util_paper(network, requests, result.schedule),
                       3),
         format_double(metrics::stretch_stats(requests, result.schedule).mean(), 2),
         format_double(metrics::start_delay_stats(requests, result.schedule).mean(),
                       1)});
  }
  table.print(std::cout);

  // Per-site traffic under the f=0.8 point: what each access link carried.
  const auto chosen = points[1].scheduler.run(network, requests);
  std::vector<double> site_tb(network.egress_count(), 0.0);
  for (const Request& r : requests) {
    if (chosen.schedule.is_accepted(r.id)) {
      site_tb[r.egress.value] += r.volume.to_terabytes();
    }
  }
  Table sites{{"site", "data received (TB)"}};
  for (std::size_t m = 0; m < site_tb.size(); ++m) {
    sites.add_row({topology.site(m).name, format_double(site_tb[m], 2)});
  }
  std::cout << "\nPer-site replication volume under WINDOW(600)+f=0.8:\n";
  sites.print(std::cout);
  return 0;
}
