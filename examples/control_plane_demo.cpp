// control_plane_demo — the deployment path of §5.4 end to end:
//
//   1. reservation requests travel the overlay to their ingress router,
//      which decides locally against (slightly stale) broadcast state;
//   2. granted transfers are policed at the access point by token buckets
//      sized from their reservations — a misbehaving sender is clipped,
//      conforming ones are untouched.
//
// Run:  ./control_plane_demo [--seed=N] [--misbehave-factor=F]

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const double misbehave = flags.get_double("misbehave-factor", 4.0);

  const auto topology = control::OverlayTopology::grid5000_like(8);
  std::cout << "overlay: " << topology.site_count() << " sites, "
            << topology.mesh_link_count() << " mesh links, "
            << topology.attachment_count() << " host attachments\n";

  // A burst of requests (one every 200 ms for a minute).
  workload::WorkloadSpec spec;
  spec.ingress_count = topology.site_count();
  spec.egress_count = topology.site_count();
  spec.mean_interarrival = Duration::seconds(0.2);
  spec.horizon = Duration::seconds(60);
  spec.slack = workload::SlackLaw::flexible(1.5, 4.0);
  Rng rng{seed};
  const auto requests = workload::generate(spec, rng);

  control::ControlPlaneOptions options;
  options.policy = heuristics::BandwidthPolicy::fraction_of_max(1.0);
  const auto report = control::run_control_plane(topology, requests, options);

  std::cout << "reservations: " << report.result.accepted_count() << " granted / "
            << requests.size() << " requested (accept rate "
            << format_double(report.result.accept_rate(), 3) << ")\n";
  std::cout << "egress conflicts from stale views: " << report.egress_conflicts << "\n";
  std::cout << "mean client response time: "
            << format_double(report.response_time_s.mean() * 1000.0, 3) << " ms over "
            << report.control_messages << " broadcast messages\n";

  const auto validation = validate_schedule(topology.data_plane(), requests,
                                            report.result.schedule);
  std::cout << "data-plane feasibility: "
            << (validation.ok() ? "valid" : validation.to_string()) << "\n\n";

  // Policing: take the first few granted reservations; make one sender
  // misbehave at `misbehave` times its reservation.
  std::vector<control::PolicedFlow> flows;
  for (const Assignment& a : report.result.schedule.assignments()) {
    const double factor = flows.empty() ? misbehave : 1.0;  // first flow cheats
    flows.push_back(control::PolicedFlow{a.request, a.bw, a.bw * factor});
    if (flows.size() == 6) break;
  }
  if (flows.empty()) {
    std::cout << "no granted flows to police\n";
    return 0;
  }
  const auto policing = control::police_flows(flows, Duration::seconds(5));
  Table table{{"flow", "offered", "delivered", "dropped", "delivery ratio"}};
  for (const auto& f : policing.flows) {
    table.add_row({"r" + std::to_string(f.id), to_string(f.offered),
                   to_string(f.delivered), to_string(f.dropped),
                   format_double(f.delivery_ratio(), 3)});
  }
  std::cout << "token-bucket policing (flow r" << policing.flows.front().id
            << " misbehaves at " << misbehave << "x its reservation):\n";
  table.print(std::cout);
  return validation.ok() ? 0 : 1;
}
