// quickstart — the smallest end-to-end use of the library:
//
//   1. build the paper's platform (10 x 10 ports at 1 GB/s);
//   2. generate a Poisson workload of flexible bulk-transfer requests;
//   3. schedule it with the WINDOW heuristic (interval 400 s, f = 0.8);
//   4. validate the schedule independently and print the paper's metrics.
//
// Run:  ./quickstart [--seed=N]

#include <iostream>

#include "gridbw.hpp"

int main(int argc, char** argv) {
  using namespace gridbw;
  const Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  // 1. Platform: the §4.3 grid — 10 ingress and 10 egress points, 1 GB/s each.
  const Network network = Network::uniform(10, 10, Bandwidth::gigabytes_per_second(1));

  // 2. Workload: Poisson arrivals (one request every 2 s for 10 min),
  //    paper volume law (10 GB .. 1 TB), host rates 10 MB/s .. 1 GB/s,
  //    deadlines up to 4x the fastest possible transfer.
  workload::WorkloadSpec spec;
  spec.mean_interarrival = Duration::minutes(1);  // ~= offered load 1.0
  spec.horizon = Duration::hours(2);
  spec.slack = workload::SlackLaw::flexible(1.0, 4.0);
  Rng rng{seed};
  const std::vector<Request> requests = workload::generate(spec, rng);
  std::cout << "generated " << requests.size() << " requests, expected offered load "
            << format_double(workload::expected_offered_load(spec, network), 2)
            << "\n";

  // 3. Schedule: interval-based admission, guaranteeing 80% of each host's
  //    maximum rate to every accepted transfer (§2.3's tuning factor).
  heuristics::WindowOptions options;
  options.step = Duration::seconds(400);
  options.policy = heuristics::BandwidthPolicy::fraction_of_max(0.8);
  const ScheduleResult result =
      heuristics::schedule_flexible_window(network, requests, options);

  // 4. Verify and report.
  const ValidationReport report =
      validate_schedule(network, requests, result.schedule, 0.8);
  std::cout << "schedule is " << (report.ok() ? "valid" : report.to_string()) << "\n";
  std::cout << "accept rate        : "
            << format_double(metrics::accept_rate(requests, result.schedule), 3)
            << "\n";
  std::cout << "utilization (2 h)  : "
            << format_double(
                   metrics::utilization_over(network, requests, result.schedule,
                                             TimePoint::origin(),
                                             TimePoint::origin() + spec.horizon),
                   3)
            << "\n";
  std::cout << "mean stretch       : "
            << format_double(metrics::stretch_stats(requests, result.schedule).mean(), 3)
            << " (1 = full host rate)\n";
  return report.ok() ? 0 : 1;
}
